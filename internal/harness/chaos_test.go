package harness

// The acceptance chaos test for the fault-injection layer: all four §5
// parallel algorithms (hypergraph scratch, hypergraph repartition via the
// augmented model, graph scratch, graph adaptive repartition) must produce
// identical partitions and cut/migration metrics under every injected
// delay/reorder schedule.

import (
	"testing"
	"time"

	"hyperbal/internal/core"
	"hyperbal/internal/datasets"
	"hyperbal/internal/gp"
	"hyperbal/internal/graph"
	"hyperbal/internal/hgp"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
	"hyperbal/internal/pgp"
	"hyperbal/internal/phg"
)

// algoMetrics is one algorithm's full outcome: the partition itself plus
// the cut and migration metrics the paper reports.
type algoMetrics struct {
	parts []int32
	cut   int64
	mig   int64
}

func (a algoMetrics) equal(b algoMetrics) bool {
	if a.cut != b.cut || a.mig != b.mig || len(a.parts) != len(b.parts) {
		return false
	}
	for i := range a.parts {
		if a.parts[i] != b.parts[i] {
			return false
		}
	}
	return true
}

func runAlgo(t *testing.T, np int, plan *mpi.FaultPlan, fn func(c *mpi.Comm) (partition.Partition, error)) partition.Partition {
	t.Helper()
	var out partition.Partition
	_, err := mpi.RunWith(np, mpi.Options{Watchdog: 2 * time.Minute, Fault: plan}, func(c *mpi.Comm) error {
		p, err := fn(c)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = p
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSection5AlgorithmsScheduleIndependent(t *testing.T) {
	const (
		np    = 4
		k     = 4
		alpha = 4
	)
	g, err := datasets.Generate("2DLipid", 96, 17)
	if err != nil {
		t.Fatal(err)
	}
	h := graph.ToHypergraph(g)
	old, err := hgp.Partition(h, hgp.Options{K: k, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.BuildRepartition(h, old, k, alpha)
	if err != nil {
		t.Fatal(err)
	}

	algos := []struct {
		name string
		run  func(plan *mpi.FaultPlan) algoMetrics
	}{
		{"phg-scratch", func(plan *mpi.FaultPlan) algoMetrics {
			p := runAlgo(t, np, plan, func(c *mpi.Comm) (partition.Partition, error) {
				return phg.Partition(c, h, phg.Options{Serial: hgp.Options{K: k, Seed: 18}})
			})
			return algoMetrics{parts: p.Parts, cut: partition.CutSize(h, p)}
		}},
		{"phg-repart", func(plan *mpi.FaultPlan) algoMetrics {
			aug := runAlgo(t, np, plan, func(c *mpi.Comm) (partition.Partition, error) {
				return phg.Partition(c, r.H, phg.Options{Serial: hgp.Options{K: k, Seed: 19}})
			})
			p, mig, err := r.Decode(h, aug)
			if err != nil {
				t.Fatal(err)
			}
			return algoMetrics{parts: p.Parts, cut: partition.CutSize(h, p), mig: mig.Volume}
		}},
		{"pgp-scratch", func(plan *mpi.FaultPlan) algoMetrics {
			p := runAlgo(t, np, plan, func(c *mpi.Comm) (partition.Partition, error) {
				return pgp.Partition(c, g, pgp.Options{Serial: gp.Options{K: k, Imbalance: 0.05, Seed: 20}})
			})
			return algoMetrics{parts: p.Parts, cut: partition.EdgeCut(g, p)}
		}},
		{"pgp-adaptive", func(plan *mpi.FaultPlan) algoMetrics {
			p := runAlgo(t, np, plan, func(c *mpi.Comm) (partition.Partition, error) {
				return pgp.AdaptiveRepart(c, g, old, alpha, pgp.Options{Serial: gp.Options{K: k, Imbalance: 0.05, Seed: 21}})
			})
			return algoMetrics{
				parts: p.Parts,
				cut:   partition.EdgeCut(g, p),
				mig:   partition.GraphMigrationVolume(g, old, p),
			}
		}},
	}

	plans := []*mpi.FaultPlan{
		nil,
		{Seed: 21, MaxDelay: 150 * time.Microsecond},
		{Seed: 22, Reorder: true},
		{Seed: 23, MaxDelay: 80 * time.Microsecond, Reorder: true, DelayRanks: []int{0, 3}},
	}
	for _, algo := range algos {
		baseline := algo.run(plans[0])
		for _, plan := range plans[1:] {
			got := algo.run(plan)
			if !got.equal(baseline) {
				t.Fatalf("%s: metrics (cut=%d, mig=%d) under FaultPlan{Seed:%d} differ from clean (cut=%d, mig=%d)",
					algo.name, got.cut, got.mig, plan.Seed, baseline.cut, baseline.mig)
			}
		}
	}
}

func TestParallelRuntimeWithInjection(t *testing.T) {
	// The Figures 7-8 harness itself must run under injection and report
	// the new collective/stall columns.
	clean, err := ParallelRuntime("auto", 64, []int{2}, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := ParallelRuntimeWith(mpi.Options{
		Watchdog: 2 * time.Minute,
		Fault:    &mpi.FaultPlan{Seed: 5, Reorder: true, MaxDelay: 50 * time.Microsecond},
	}, "auto", 64, []int{2}, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != len(faulted) {
		t.Fatalf("cell counts differ: %d vs %d", len(clean), len(faulted))
	}
	for i := range clean {
		if clean[i].Cut != faulted[i].Cut {
			t.Fatalf("cell %d: cut %d under injection, %d clean", i, faulted[i].Cut, clean[i].Cut)
		}
		if clean[i].Collectives == 0 || faulted[i].Collectives == 0 {
			t.Fatalf("cell %d: collectives not recorded (%d clean, %d faulted)",
				i, clean[i].Collectives, faulted[i].Collectives)
		}
	}
}
