package appsim

// Chaos tests: the simulated application's measured results (comm volume,
// migration volume) must be schedule independent under injected delays and
// reordering, and a rank crash mid-epoch must surface as a clean error.

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"hyperbal/internal/hgp"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

func chaosPlans() []*mpi.FaultPlan {
	return []*mpi.FaultPlan{
		nil,
		{Seed: 31, MaxDelay: 100 * time.Microsecond},
		{Seed: 32, Reorder: true},
		{Seed: 33, MaxDelay: 60 * time.Microsecond, Reorder: true, DelayRanks: []int{0}},
	}
}

func TestSimulateScheduleIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, k := 48, 4
	h := randomHG(rng, n, 2*n)
	old, err := hgp.Partition(h, hgp.Options{K: k, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	p, err := hgp.Partition(h, hgp.Options{K: k, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var baseline Result
	for i, plan := range chaosPlans() {
		res, err := SimulateWith(mpi.Options{Watchdog: 30 * time.Second, Fault: plan}, h, &old, p, 3)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if res.WordsPerIteration != partition.CutSize(h, p) {
			t.Fatalf("plan %d: measured %d words/iter, cut is %d", i, res.WordsPerIteration, partition.CutSize(h, p))
		}
		if i == 0 {
			baseline = res
			continue
		}
		if res != baseline {
			t.Fatalf("result under FaultPlan{Seed:%d} is %+v, clean run gave %+v", plan.Seed, res, baseline)
		}
	}
}

func TestSimulateCrashFailsCleanly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, k := 48, 4
	h := randomHG(rng, n, 2*n)
	p, err := hgp.Partition(h, hgp.Options{K: k, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = SimulateWith(mpi.Options{
		Watchdog: 2 * time.Second,
		Fault:    &mpi.FaultPlan{Crash: map[int]int{1: 3}},
	}, h, nil, p, 50)
	if err == nil {
		t.Fatal("expected a crash mid-epoch to surface as an error")
	}
	var crash *mpi.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("expected CrashError, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("crash took %v to surface", elapsed)
	}
}
