package appsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperbal/internal/hgp"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

func randomHG(rng *rand.Rand, n, nets int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetSize(v, int64(1+rng.Intn(3)))
	}
	for i := 0; i < nets; i++ {
		sz := 2 + rng.Intn(4)
		if sz > n {
			sz = n
		}
		b.AddNet(int64(1+rng.Intn(3)), rng.Perm(n)[:sz]...)
	}
	return b.Build()
}

// The headline invariant: measured per-iteration traffic equals the
// connectivity-1 cut.
func TestMeasuredCommEqualsCut(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := 30 + rng.Intn(60)
		k := 2 + rng.Intn(4)
		h := randomHG(rng, n, 2*n)
		p := partition.Partition{K: k, Parts: make([]int32, n)}
		for v := range p.Parts {
			p.Parts[v] = int32(rng.Intn(k))
		}
		res, err := Simulate(h, nil, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := partition.CutSize(h, p)
		if res.WordsPerIteration != want {
			t.Fatalf("trial %d: measured %d words/iter, cut is %d", trial, res.WordsPerIteration, want)
		}
		if res.TotalWords != 3*want {
			t.Fatalf("trial %d: total %d, want %d", trial, res.TotalWords, 3*want)
		}
		if res.MaxRankSend > res.WordsPerIteration {
			t.Fatalf("max rank send %d exceeds total %d", res.MaxRankSend, res.WordsPerIteration)
		}
	}
}

func TestEpochWithMigration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, k := 40, 4
	h := randomHG(rng, n, 60)
	old := partition.Partition{K: k, Parts: make([]int32, n)}
	p := partition.Partition{K: k, Parts: make([]int32, n)}
	for v := 0; v < n; v++ {
		old.Parts[v] = int32(v % k)
		p.Parts[v] = int32((v + v%3) % k)
	}
	res, err := Simulate(h, &old, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MigratedWords != partition.MigrationVolume(h, old, p) {
		t.Fatalf("measured migration %d != metric %d",
			res.MigratedWords, partition.MigrationVolume(h, old, p))
	}
}

func TestEpochWorldSizeMismatch(t *testing.T) {
	h := randomHG(rand.New(rand.NewSource(5)), 10, 10)
	p := partition.New(10, 3)
	err := mpi.Run(2, func(c *mpi.Comm) error {
		_, err := Epoch(c, h, nil, p, 1)
		if err == nil {
			t.Error("expected size mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// After partitioning, the simulated application's traffic should drop
// relative to a random assignment — the whole point of the exercise.
func TestPartitioningReducesMeasuredTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// ring-of-cliques structure with clear locality
	n := 80
	b := hypergraph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddNet(1, v, (v+1)%n)
		if v%4 == 0 {
			b.AddNet(1, v, (v+2)%n, (v+3)%n)
		}
	}
	h := b.Build()
	k := 4
	random := partition.Partition{K: k, Parts: make([]int32, n)}
	for v := range random.Parts {
		random.Parts[v] = int32(rng.Intn(k))
	}
	good, err := hgp.Partition(h, hgp.Options{K: k, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	resRandom, err := Simulate(h, nil, random, 1)
	if err != nil {
		t.Fatal(err)
	}
	resGood, err := Simulate(h, nil, good, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resGood.WordsPerIteration >= resRandom.WordsPerIteration {
		t.Fatalf("partitioned traffic %d not below random %d",
			resGood.WordsPerIteration, resRandom.WordsPerIteration)
	}
}

// Property: the measured-equals-cut identity holds for arbitrary
// hypergraphs and partitions.
func TestQuickMeasuredEqualsCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		k := 2 + rng.Intn(3)
		h := randomHG(rng, n, n)
		p := partition.Partition{K: k, Parts: make([]int32, n)}
		for v := range p.Parts {
			p.Parts[v] = int32(rng.Intn(k))
		}
		res, err := Simulate(h, nil, p, 1)
		if err != nil {
			return false
		}
		return res.WordsPerIteration == partition.CutSize(h, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
