// Package appsim simulates the adaptive application the load balancer
// serves: an iterative halo-exchange computation running SPMD over the
// mpi substrate, with each rank owning one part's vertices. Every
// iteration, each cut net's data travels from the part that owns the net
// to every other part the net touches — exactly (λ-1) transfers of the
// net's cost, so the measured per-iteration traffic must equal the
// connectivity-1 cut (Eq. 2). This closes the loop on the paper's premise
// that the hypergraph cut *is* the application's communication volume,
// and provides measured (not modeled) t_comm / t_mig for experiments.
package appsim

import (
	"fmt"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/migrate"
	"hyperbal/internal/mpi"
	"hyperbal/internal/partition"
)

// Result summarizes a simulated epoch.
type Result struct {
	Iterations int
	// WordsPerIteration is the measured number of data words exchanged in
	// one iteration, summed over all ranks. Equals CutSize(h, p) when the
	// partition's cut accounting is correct.
	WordsPerIteration int64
	// TotalWords = Iterations * WordsPerIteration.
	TotalWords int64
	// MaxRankSend is the busiest rank's per-iteration send volume (the
	// communication bottleneck).
	MaxRankSend int64
	// MigratedWords is the measured migration volume executed before the
	// epoch (0 if no migration was requested).
	MigratedWords int64
}

// Epoch runs one epoch on an existing communicator: optionally migrate
// from old to p, then perform iterations of halo exchange under p. Every
// rank must call it; the communicator size must equal p.K. The identical
// Result is returned on every rank.
func Epoch(c *mpi.Comm, h *hypergraph.Hypergraph, old *partition.Partition, p partition.Partition, iterations int) (Result, error) {
	if c.Size() != p.K {
		return Result{}, fmt.Errorf("appsim: partition has %d parts, world has %d ranks", p.K, c.Size())
	}
	var res Result
	res.Iterations = iterations

	// Optional migration phase, with real payload movement.
	if old != nil {
		stores := buildLocalStore(h, *old, c.Rank())
		plan, err := migrate.NewPlan(h, *old, p)
		if err != nil {
			return Result{}, err
		}
		if _, err := migrate.Execute(c, plan, stores); err != nil {
			return Result{}, err
		}
		res.MigratedWords = plan.TotalVolume()
	}

	// Precompute this rank's per-destination send schedule: for every net
	// owned by this rank (owner = part of the net's first pin), one block
	// of cost words to each other part the net touches.
	me := int32(c.Rank())
	sendTo := make([]int64, p.K) // words per destination per iteration
	mark := make([]bool, p.K)
	for n := 0; n < h.NumNets(); n++ {
		pins := h.Pins(n)
		if len(pins) == 0 {
			continue
		}
		owner := p.Parts[pins[0]]
		if owner != me {
			continue
		}
		touched := touchedParts(p, pins, mark)
		for _, q := range touched {
			if q != me {
				sendTo[q] += h.Cost(n)
			}
		}
	}
	var mySend int64
	for _, w := range sendTo {
		mySend += w
	}

	// Who sends to me is symmetric knowledge: every rank can compute the
	// full schedule from (h, p), so receives are posted deterministically.
	recvFrom := make([]int64, p.K)
	for q := 0; q < p.K; q++ {
		if int32(q) != me {
			recvFrom[q] = wordsFromTo(h, p, int32(q), me, mark)
		}
	}

	// Run the iterations: one message per destination per iteration,
	// payload sized by the schedule ([]int64, one element per data word).
	const tag = 7001
	for it := 0; it < iterations; it++ {
		for q := 0; q < p.K; q++ {
			if int32(q) == me || sendTo[q] == 0 {
				continue
			}
			c.Send(q, tag, make([]int64, sendTo[q]))
		}
		for q := 0; q < p.K; q++ {
			if int32(q) != me && recvFrom[q] > 0 {
				c.Recv(q, tag)
			}
		}
	}

	res.WordsPerIteration = mpi.Allreduce(c, mySend, mpi.SumInt64)
	res.TotalWords = res.WordsPerIteration * int64(iterations)
	res.MaxRankSend = mpi.Allreduce(c, mySend, mpi.MaxInt64)
	return res, nil
}

// Simulate is the single-call convenience wrapper: it spins up a world
// with one rank per part and runs Epoch.
func Simulate(h *hypergraph.Hypergraph, old *partition.Partition, p partition.Partition, iterations int) (Result, error) {
	return SimulateWith(mpi.Options{}, h, old, p, iterations)
}

// SimulateWith is Simulate with explicit world options, so the simulated
// application can run under fault injection, a watchdog, or tracing.
func SimulateWith(opt mpi.Options, h *hypergraph.Hypergraph, old *partition.Partition, p partition.Partition, iterations int) (Result, error) {
	var out Result
	_, err := mpi.RunWith(p.K, opt, func(c *mpi.Comm) error {
		r, err := Epoch(c, h, old, p, iterations)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = r
		}
		return nil
	})
	return out, err
}

// touchedParts lists the distinct parts net pins touch; mark must be a
// zeroed scratch of length K and is re-zeroed before return.
func touchedParts(p partition.Partition, pins []int32, mark []bool) []int32 {
	var touched []int32
	for _, v := range pins {
		q := p.Parts[v]
		if !mark[q] {
			mark[q] = true
			touched = append(touched, q)
		}
	}
	for _, q := range touched {
		mark[q] = false
	}
	return touched
}

// wordsFromTo computes the per-iteration words rank `from` sends rank `to`
// under the deterministic owner-sends schedule.
func wordsFromTo(h *hypergraph.Hypergraph, p partition.Partition, from, to int32, mark []bool) int64 {
	var words int64
	for n := 0; n < h.NumNets(); n++ {
		pins := h.Pins(n)
		if len(pins) == 0 || p.Parts[pins[0]] != from {
			continue
		}
		touched := touchedParts(p, pins, mark)
		for _, q := range touched {
			if q == to {
				words += h.Cost(n)
			}
		}
	}
	return words
}

// buildLocalStore creates this rank's owned payloads (one byte per size
// unit).
func buildLocalStore(h *hypergraph.Hypergraph, owner partition.Partition, rank int) migrate.Store {
	store := make(migrate.Store)
	for v := 0; v < h.NumVertices(); v++ {
		if owner.Of(v) == rank {
			store[int32(v)] = make([]byte, h.Size(v))
		}
	}
	return store
}
