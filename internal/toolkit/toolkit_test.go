package toolkit

import (
	"testing"

	"hyperbal/internal/core"
)

// meshApp is a toy application: a ring of cells with sparse object IDs
// (spaced by 10) and mutable ownership.
type meshApp struct {
	n     int
	owner map[ObjectID]int
	dead  map[ObjectID]bool
}

func newMeshApp(n int) *meshApp {
	return &meshApp{n: n, owner: map[ObjectID]int{}, dead: map[ObjectID]bool{}}
}

func (a *meshApp) id(i int) ObjectID { return ObjectID(i * 10) }

func (a *meshApp) callbacks() Callbacks {
	return Callbacks{
		Objects: func() []ObjectID {
			var ids []ObjectID
			for i := 0; i < a.n; i++ {
				if !a.dead[a.id(i)] {
					ids = append(ids, a.id(i))
				}
			}
			return ids
		},
		NumEdges: func() int { return a.n },
		Edge: func(e int) (int64, []ObjectID) {
			return 1, []ObjectID{a.id(e), a.id((e + 1) % a.n)}
		},
		OwnedBy: func(id ObjectID) int { return a.owner[id] },
	}
}

func TestPartitionAndLoadBalance(t *testing.T) {
	app := newMeshApp(64)
	lb, err := New(core.Config{K: 4, Alpha: 10, Seed: 1, Method: core.HypergraphRepart}, app.callbacks())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := lb.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Assignments) != 64 {
		t.Fatalf("assignments for %d objects, want 64", len(ch.Assignments))
	}
	if ch.Plan != nil || len(ch.Exports) != 0 {
		t.Fatal("static partition must not produce exports")
	}
	counts := map[int]int{}
	for _, p := range ch.Assignments {
		if p < 0 || p >= 4 {
			t.Fatalf("part %d out of range", p)
		}
		counts[p]++
	}
	for p := 0; p < 4; p++ {
		if counts[p] < 12 || counts[p] > 20 {
			t.Fatalf("part %d has %d objects (imbalanced)", p, counts[p])
		}
	}

	// Adopt the assignment, delete a few objects, rebalance.
	for id, p := range ch.Assignments {
		app.owner[id] = p
	}
	for i := 0; i < 6; i++ {
		app.dead[app.id(i)] = true
	}
	ch2, err := lb.LoadBalance(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch2.Assignments) != 58 {
		t.Fatalf("assignments for %d objects, want 58", len(ch2.Assignments))
	}
	// exports consistent with assignment diff
	for _, e := range ch2.Exports {
		if app.owner[e.Object] != e.FromPart {
			t.Fatalf("export %v: FromPart mismatch", e)
		}
		if ch2.Assignments[e.Object] != e.ToPart {
			t.Fatalf("export %v: ToPart mismatch", e)
		}
	}
	// plan volume matches reported migration
	if ch2.Plan == nil {
		if ch2.MigrationVolume != 0 {
			t.Fatal("nil plan with nonzero migration")
		}
	} else if ch2.Plan.TotalVolume() != ch2.MigrationVolume {
		t.Fatalf("plan volume %d != reported %d", ch2.Plan.TotalVolume(), ch2.MigrationVolume)
	}
}

func TestCallbackValidation(t *testing.T) {
	app := newMeshApp(8)
	cb := app.callbacks()
	cb.Objects = nil
	if _, err := New(core.Config{K: 2}, cb); err == nil {
		t.Fatal("expected error for missing Objects")
	}
	cb = app.callbacks()
	cb.NumEdges = nil
	if _, err := New(core.Config{K: 2}, cb); err == nil {
		t.Fatal("expected error for missing NumEdges")
	}
	if _, err := New(core.Config{K: 0}, app.callbacks()); err == nil {
		t.Fatal("expected error for bad config")
	}
}

func TestLoadBalanceRequiresOwnedBy(t *testing.T) {
	app := newMeshApp(8)
	cb := app.callbacks()
	cb.OwnedBy = nil
	lb, err := New(core.Config{K: 2}, cb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lb.LoadBalance(1); err == nil {
		t.Fatal("expected error without OwnedBy")
	}
}

func TestOwnedByRangeChecked(t *testing.T) {
	app := newMeshApp(8)
	cb := app.callbacks()
	cb.OwnedBy = func(ObjectID) int { return 99 }
	lb, _ := New(core.Config{K: 2}, cb)
	if _, err := lb.LoadBalance(1); err == nil {
		t.Fatal("expected out-of-range ownership error")
	}
}

func TestDuplicateObjectIDRejected(t *testing.T) {
	cb := Callbacks{
		Objects:  func() []ObjectID { return []ObjectID{1, 1, 2} },
		NumEdges: func() int { return 0 },
	}
	lb, err := New(core.Config{K: 2}, cb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lb.Partition(); err == nil {
		t.Fatal("expected duplicate id error")
	}
}

func TestStaleEdgesIgnored(t *testing.T) {
	// Edges referring to deleted objects must be filtered, not crash.
	app := newMeshApp(16)
	lb, _ := New(core.Config{K: 2, Seed: 3}, app.callbacks())
	ch, err := lb.Partition()
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range ch.Assignments {
		app.owner[id] = p
	}
	for i := 0; i < 8; i++ {
		app.dead[app.id(i)] = true // half the ring gone; edges still listed
	}
	if _, err := lb.LoadBalance(1); err != nil {
		t.Fatal(err)
	}
}

func TestWeightAndSizeCallbacks(t *testing.T) {
	app := newMeshApp(20)
	cb := app.callbacks()
	cb.Weight = func(id ObjectID) int64 { return int64(id%3 + 1) }
	cb.Size = func(id ObjectID) int64 { return 5 }
	lb, err := New(core.Config{K: 2, Seed: 5}, cb)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := lb.Partition()
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range ch.Assignments {
		app.owner[id] = p
	}
	ch2, err := lb.LoadBalance(1)
	if err != nil {
		t.Fatal(err)
	}
	// Migration volume must be a multiple of 5 (every object has size 5).
	if ch2.MigrationVolume%5 != 0 {
		t.Fatalf("migration %d not a multiple of object size", ch2.MigrationVolume)
	}
}
