// Package toolkit provides the Zoltan-style callback interface to the
// load balancer: applications register query callbacks describing their
// objects (vertices) and dependencies (hyperedges) instead of building
// hypergraphs by hand, call LoadBalance each epoch, and receive import/
// export lists plus a ready-to-run migration plan — the workflow of the
// Zoltan toolkit the paper's algorithm ships in.
package toolkit

import (
	"fmt"
	"sort"

	"hyperbal/internal/core"
	"hyperbal/internal/hypergraph"
	"hyperbal/internal/migrate"
	"hyperbal/internal/partition"
)

// ObjectID identifies an application object (mesh cell, matrix row, ...).
// IDs may be sparse and in any order; the toolkit maintains the dense
// mapping internally.
type ObjectID int64

// Callbacks is the query interface an application implements. It mirrors
// Zoltan's ZOLTAN_NUM_OBJ_FN / ZOLTAN_OBJ_LIST_FN / ZOLTAN_HG_* query
// functions.
type Callbacks struct {
	// Objects returns the application's current object IDs. Required.
	Objects func() []ObjectID
	// Weight returns the computational load of an object (default 1).
	Weight func(ObjectID) int64
	// Size returns the migration data size of an object (default 1).
	Size func(ObjectID) int64
	// NumEdges returns how many hyperedges the application has. Required
	// (may be 0).
	NumEdges func() int
	// Edge returns hyperedge e's cost and member objects. Required when
	// NumEdges() > 0. Members not present in Objects() are ignored, so
	// applications can keep stale edges across deletions.
	Edge func(e int) (cost int64, members []ObjectID)
	// OwnedBy returns the current part of an object, used to build the
	// migration nets. Required for repartitioning (not for the first
	// partition).
	OwnedBy func(ObjectID) int
}

// Changes is the result of one load-balance operation, expressed as
// Zoltan-style import/export lists.
type Changes struct {
	// Assignments maps every object to its new part.
	Assignments map[ObjectID]int
	// Exports lists objects that must leave their current part, with
	// destination.
	Exports []Export
	// CommVolume and MigrationVolume mirror core.Result.
	CommVolume      int64
	MigrationVolume int64
	// Plan is the executable migration schedule (nil when nothing moves or
	// for a first partition).
	Plan *migrate.Plan
	// dense bookkeeping for tests / advanced callers
	Partition partition.Partition
	IDs       []ObjectID
}

// Export is one relocation directive.
type Export struct {
	Object   ObjectID
	FromPart int
	ToPart   int
}

// LB is a configured load balancer bound to application callbacks.
type LB struct {
	cfg core.Config
	cb  Callbacks
}

// New validates the configuration and callbacks.
func New(cfg core.Config, cb Callbacks) (*LB, error) {
	if cb.Objects == nil {
		return nil, fmt.Errorf("toolkit: Objects callback is required")
	}
	if cb.NumEdges == nil {
		return nil, fmt.Errorf("toolkit: NumEdges callback is required")
	}
	if _, err := core.NewBalancer(cfg); err != nil {
		return nil, err
	}
	return &LB{cfg: cfg, cb: cb}, nil
}

// snapshot materializes the application state into a hypergraph.
func (lb *LB) snapshot() ([]ObjectID, map[ObjectID]int, *hypergraph.Hypergraph, error) {
	ids := append([]ObjectID(nil), lb.cb.Objects()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	index := make(map[ObjectID]int, len(ids))
	for i, id := range ids {
		if _, dup := index[id]; dup {
			return nil, nil, nil, fmt.Errorf("toolkit: duplicate object id %d", id)
		}
		index[id] = i
	}
	b := hypergraph.NewBuilder(len(ids))
	for i, id := range ids {
		if lb.cb.Weight != nil {
			b.SetWeight(i, lb.cb.Weight(id))
		}
		if lb.cb.Size != nil {
			b.SetSize(i, lb.cb.Size(id))
		}
	}
	var pins []int
	for e := 0; e < lb.cb.NumEdges(); e++ {
		cost, members := lb.cb.Edge(e)
		pins = pins[:0]
		for _, m := range members {
			if v, ok := index[m]; ok {
				pins = append(pins, v)
			}
		}
		if len(pins) >= 2 {
			b.AddNet(cost, pins...)
		}
	}
	return ids, index, b.Build(), nil
}

// Partition computes the first (static) decomposition.
func (lb *LB) Partition() (*Changes, error) {
	ids, _, h, err := lb.snapshot()
	if err != nil {
		return nil, err
	}
	bal, err := core.NewBalancer(lb.cfg)
	if err != nil {
		return nil, err
	}
	res, err := bal.Partition(core.Problem{H: h})
	if err != nil {
		return nil, err
	}
	return lb.changes(ids, h, res, nil)
}

// LoadBalance repartitions given the current ownership from the OwnedBy
// callback; epoch seeds the partitioner differently each call.
func (lb *LB) LoadBalance(epoch int64) (*Changes, error) {
	if lb.cb.OwnedBy == nil {
		return nil, fmt.Errorf("toolkit: OwnedBy callback is required for LoadBalance")
	}
	ids, _, h, err := lb.snapshot()
	if err != nil {
		return nil, err
	}
	old := partition.Partition{Parts: make([]int32, len(ids)), K: lb.cfg.K}
	for i, id := range ids {
		p := lb.cb.OwnedBy(id)
		if p < 0 || p >= lb.cfg.K {
			return nil, fmt.Errorf("toolkit: OwnedBy(%d) = %d, want [0,%d)", id, p, lb.cfg.K)
		}
		old.Parts[i] = int32(p)
	}
	bal, err := core.NewBalancer(lb.cfg)
	if err != nil {
		return nil, err
	}
	res, err := bal.Repartition(core.Problem{H: h}, old, epoch)
	if err != nil {
		return nil, err
	}
	return lb.changes(ids, h, res, &old)
}

func (lb *LB) changes(ids []ObjectID, h *hypergraph.Hypergraph, res core.Result, old *partition.Partition) (*Changes, error) {
	ch := &Changes{
		Assignments:     make(map[ObjectID]int, len(ids)),
		CommVolume:      res.CommVolume,
		MigrationVolume: res.MigrationVolume,
		Partition:       res.Partition,
		IDs:             ids,
	}
	for i, id := range ids {
		ch.Assignments[id] = res.Partition.Of(i)
	}
	if old != nil {
		for i, id := range ids {
			if from, to := old.Of(i), res.Partition.Of(i); from != to {
				ch.Exports = append(ch.Exports, Export{Object: id, FromPart: from, ToPart: to})
			}
		}
		plan, err := migrate.NewPlan(h, *old, res.Partition)
		if err != nil {
			return nil, err
		}
		ch.Plan = plan
	}
	return ch, nil
}
