// Package gp implements the graph-partitioning baseline the paper compares
// against: a METIS-style serial multilevel graph partitioner (heavy-edge
// matching, greedy graph growing, boundary FM refinement, recursive
// bisection) and a ParMETIS-style adaptive repartitioner implementing the
// unified scheme of Schloegel, Karypis and Kumar with the ITR trade-off
// parameter (the paper's "ParMETIS-repart" with AdaptiveRepart, where
// "our α corresponds to the ITR parameter in ParMETIS").
//
// The implementation is deliberately graph-specialized (adjacency-array
// gains, no hypergraph machinery) so that its run-time profile matches the
// role graph partitioners play in Figures 7-8: substantially faster than
// the hypergraph pipeline on medium-dense inputs.
package gp

import (
	"fmt"
	"math/rand"

	"hyperbal/internal/graph"
	"hyperbal/internal/partition"
)

// Options control the multilevel graph partitioner.
type Options struct {
	K             int
	Imbalance     float64 // Eq. 1 epsilon
	Seed          int64
	CoarsenTo     int     // stop coarsening at this many vertices (default 100)
	MinShrink     float64 // abort coarsening below this shrink factor (default 0.1)
	InitialStarts int     // multi-start count at the coarsest level (default 8)
	RefinePasses  int     // FM pass bound per level (default 4)
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 1
	}
	if o.Imbalance <= 0 {
		o.Imbalance = 0.05
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 100
	}
	if o.MinShrink <= 0 {
		o.MinShrink = 0.10
	}
	if o.InitialStarts <= 0 {
		o.InitialStarts = 8
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 4
	}
	return o
}

// Partition computes a k-way partition from scratch (the paper's
// "ParMETIS-scratch" / Partkway role) via multilevel recursive bisection.
func Partition(g *graph.Graph, opt Options) (partition.Partition, error) {
	opt = opt.withDefaults()
	if opt.K < 1 {
		return partition.Partition{}, fmt.Errorf("gp: K must be >= 1, got %d", opt.K)
	}
	p := partition.Partition{Parts: make([]int32, g.NumVertices()), K: opt.K}
	if opt.K == 1 || g.NumVertices() == 0 {
		return p, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	vs := make([]int32, g.NumVertices())
	for v := range vs {
		vs[v] = int32(v)
	}
	recursiveBisect(g, vs, 0, opt.K, p.Parts, rng, opt)
	caps := capsFor(g, opt.K, opt.Imbalance)
	RefineKway(g, opt.K, p.Parts, nil, 0, caps, opt.RefinePasses)
	return p, nil
}

// recursiveBisect splits the sub-graph sub (sub index i == global vs[i])
// into parts [lo,hi) written to out.
func recursiveBisect(sub *graph.Graph, vs []int32, lo, hi int, out []int32, rng *rand.Rand, opt Options) {
	k := hi - lo
	if k <= 1 || sub.NumVertices() == 0 {
		for _, v := range vs {
			out[v] = int32(lo)
		}
		return
	}
	kLeft := (k + 1) / 2
	mid := lo + kLeft
	frac0 := float64(kLeft) / float64(k)

	sides := bisect(sub, rng, frac0, opt)

	if k == 2 {
		for i, v := range vs {
			out[v] = int32(lo + int(sides[i]))
		}
		return
	}
	left, leftVs := induce(sub, vs, sides, 0)
	right, rightVs := induce(sub, vs, sides, 1)
	recursiveBisect(left, leftVs, lo, mid, out, rng, opt)
	recursiveBisect(right, rightVs, mid, hi, out, rng, opt)
}

// bisect runs the multilevel 2-way pipeline on g.
func bisect(g *graph.Graph, rng *rand.Rand, frac0 float64, opt Options) []int32 {
	levels := coarsen(g, rng, max(opt.CoarsenTo, 4), opt.MinShrink, nil)
	coarsest := levels[len(levels)-1].g

	total := coarsest.TotalWeight()
	target0 := int64(float64(total) * frac0)
	eps := opt.Imbalance
	cap0 := int64(float64(total) * frac0 * (1 + eps))
	cap1 := int64(float64(total) * (1 - frac0) * (1 + eps))

	var best []int32
	var bestCut int64 = -1
	for s := 0; s < opt.InitialStarts; s++ {
		parts := ggp2(coarsest, rng, target0, cap0)
		cut := fm2(coarsest, parts, cap0, cap1, opt.RefinePasses)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			best = append(best[:0], parts...)
		}
	}
	parts := best
	for i := len(levels) - 2; i >= 0; i-- {
		parts = Project(levels[i].cmap, parts)
		lt := levels[i].g.TotalWeight()
		lc0 := int64(float64(lt) * frac0 * (1 + eps))
		lc1 := int64(float64(lt) * (1 - frac0) * (1 + eps))
		fm2(levels[i].g, parts, lc0, lc1, opt.RefinePasses)
	}
	return parts
}

// induce extracts the side subgraph with global id mapping.
func induce(g *graph.Graph, vs []int32, sides []int32, side int32) (*graph.Graph, []int32) {
	newID := make([]int32, g.NumVertices())
	for i := range newID {
		newID[i] = -1
	}
	var keepVs []int32
	for v := 0; v < g.NumVertices(); v++ {
		if sides[v] == side {
			newID[v] = int32(len(keepVs))
			keepVs = append(keepVs, vs[v])
		}
	}
	b := graph.NewBuilder(len(keepVs))
	for v := 0; v < g.NumVertices(); v++ {
		if newID[v] < 0 {
			continue
		}
		i := int(newID[v])
		b.SetWeight(i, g.Weight(v))
		b.SetSize(i, g.Size(v))
		adj, wts := g.Adj(v), g.AdjWeights(v)
		for j, u := range adj {
			if int(u) > v && newID[u] >= 0 {
				b.AddEdge(i, int(newID[u]), wts[j])
			}
		}
	}
	return b.Build(), keepVs
}

func capsFor(g *graph.Graph, k int, eps float64) []int64 {
	total := g.TotalWeight()
	caps := make([]int64, k)
	capv := int64(float64(total) / float64(k) * (1 + eps))
	if capv < 1 {
		capv = 1
	}
	for p := range caps {
		caps[p] = capv
	}
	return caps
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
