package gp

import (
	"math/rand"
	"testing"

	"hyperbal/internal/graph"
	"hyperbal/internal/partition"
)

func grid(w, h int) *graph.Graph {
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return b.Build()
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+rng.Intn(3)))
		b.SetSize(v, int64(1+rng.Intn(3)))
	}
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v, int64(1+rng.Intn(4)))
		}
	}
	return b.Build()
}

func TestPartitionBisection(t *testing.T) {
	g := grid(16, 16)
	p, err := Partition(g, Options{K: 2, Imbalance: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w := partition.GraphWeights(g, p)
	if !partition.IsBalanced(w, 0.05) {
		t.Fatalf("imbalanced: %v", w)
	}
	if cut := partition.EdgeCut(g, p); cut > 32 {
		t.Fatalf("cut = %d, want <= 32 on 16x16 grid", cut)
	}
}

func TestPartitionKway(t *testing.T) {
	g := grid(20, 20)
	for _, k := range []int{4, 8} {
		p, err := Partition(g, Options{K: k, Imbalance: 0.05, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		w := partition.GraphWeights(g, p)
		if !partition.IsBalanced(w, 0.10) {
			t.Fatalf("k=%d imbalanced: %v", k, w)
		}
		if cut := partition.EdgeCut(g, p); cut > int64(60*k) {
			t.Fatalf("k=%d cut = %d too high", k, cut)
		}
	}
}

func TestPartitionK1(t *testing.T) {
	g := grid(4, 4)
	p, err := Partition(g, Options{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range p.Parts {
		if q != 0 {
			t.Fatal("K=1 should assign all to part 0")
		}
	}
}

func TestHEMLegality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 100, 300)
	match := HEM(g, rng, nil)
	for v := 0; v < 100; v++ {
		u := int(match[v])
		if int(match[u]) != v {
			t.Fatalf("match not symmetric at %d", v)
		}
		if u != v && !g.HasEdge(u, v) {
			t.Fatalf("matched non-adjacent pair %d,%d", u, v)
		}
	}
}

func TestHEMSamePartRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 80, 240)
	labels := make([]int32, 80)
	for v := range labels {
		labels[v] = int32(v % 4)
	}
	match := HEM(g, rng, labels)
	for v := 0; v < 80; v++ {
		u := int(match[v])
		if u != v && labels[u] != labels[v] {
			t.Fatalf("matched across parts: %d(%d) with %d(%d)", v, labels[v], u, labels[u])
		}
	}
}

func TestContractConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 90, 250)
	labels := make([]int32, 90)
	for v := range labels {
		labels[v] = int32(v % 3)
	}
	match := HEM(g, rng, labels)
	coarse, cmap, coarseOld := Contract(g, match, labels)
	if err := coarse.Validate(); err != nil {
		t.Fatal(err)
	}
	if coarse.TotalWeight() != g.TotalWeight() {
		t.Fatalf("weight not conserved: %d != %d", coarse.TotalWeight(), g.TotalWeight())
	}
	// edge cut of projected partitions is preserved
	k := 3
	cp := make([]int32, coarse.NumVertices())
	for v := range cp {
		cp[v] = int32(rng.Intn(k))
	}
	fp := Project(cmap, cp)
	cutC := partition.EdgeCut(coarse, partition.Partition{Parts: cp, K: k})
	cutF := partition.EdgeCut(g, partition.Partition{Parts: fp, K: k})
	if cutC != cutF {
		t.Fatalf("projected cut %d != coarse cut %d", cutF, cutC)
	}
	// coarse old labels consistent with constituents
	for v := 0; v < 90; v++ {
		if coarseOld[cmap[v]] != labels[v] {
			t.Fatalf("coarse old label mismatch at %d", v)
		}
	}
}

func TestFM2NeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 80, 200)
		parts := make([]int32, 80)
		for v := range parts {
			parts[v] = int32(rng.Intn(2))
		}
		before := EdgeCutOf(g, parts)
		cap := int64(float64(g.TotalWeight()) * 0.6)
		fm2(g, parts, cap, cap, 4)
		after := EdgeCutOf(g, parts)
		if after > before {
			t.Fatalf("FM worsened cut %d -> %d", before, after)
		}
	}
}

func TestEdGainMatchesCutDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 40, 120)
	parts := make([]int32, 40)
	for v := range parts {
		parts[v] = int32(rng.Intn(2))
	}
	for i := 0; i < 100; i++ {
		v := rng.Intn(40)
		gain := ed(g, parts, v)
		before := EdgeCutOf(g, parts)
		parts[v] = 1 - parts[v]
		after := EdgeCutOf(g, parts)
		if before-after != gain {
			t.Fatalf("ed gain %d but cut delta %d", gain, before-after)
		}
	}
}

func TestAdaptiveRepartStaysClose(t *testing.T) {
	// With a huge ITR... small ITR (=1) migration dominates: the
	// repartitioner should barely move anything when the old partition is
	// already balanced.
	g := grid(16, 16)
	old, err := Partition(g, Options{K: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	got, err := AdaptiveRepart(g, old, 1, Options{K: 4, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, g.NumVertices())
	for v := range sizes {
		sizes[v] = g.Size(v)
	}
	mig := partition.GraphMigrationVolume(g, old, got)
	if mig > g.TotalWeight()/10 {
		t.Fatalf("adaptive repart moved too much on balanced input: migration %d", mig)
	}
	w := partition.GraphWeights(g, got)
	if !partition.IsBalanced(w, 0.25) {
		t.Fatalf("adaptive repart output imbalanced: %v", w)
	}
}

func TestAdaptiveRepartRebalances(t *testing.T) {
	// Unbalance the old partition by inflating weights in part 0's region;
	// AdaptiveRepart must shed load from part 0.
	w, h := 16, 16
	b := graph.NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1), 1)
			}
			if x < w/4 {
				b.SetWeight(id(x, y), 8) // hot stripe
			}
		}
	}
	g := b.Build()
	old := partition.New(w*h, 4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			old.Assign(id(x, y), x/(w/4)) // vertical stripes
		}
	}
	oldW := partition.GraphWeights(g, old)
	if partition.IsBalanced(oldW, 0.3) {
		t.Fatalf("test setup: old partition should be imbalanced, got %v", oldW)
	}
	got, err := AdaptiveRepart(g, old, 100, Options{K: 4, Seed: 23, Imbalance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	newW := partition.GraphWeights(g, got)
	if partition.Imbalance(newW) >= partition.Imbalance(oldW)/2 {
		t.Fatalf("adaptive repart failed to rebalance: %v (imb %.2f) -> %v (imb %.2f)",
			oldW, partition.Imbalance(oldW), newW, partition.Imbalance(newW))
	}
}

func TestAdaptiveRepartITRTradeoff(t *testing.T) {
	// Larger ITR weights communication more, so migration should not
	// decrease as ITR grows (on average; deterministic here by seed).
	rng := rand.New(rand.NewSource(29))
	g := randomGraph(rng, 300, 1200)
	old, err := Partition(g, Options{K: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the old partition so there is something to fix.
	oldP := old.Clone()
	for i := 0; i < 60; i++ {
		oldP.Parts[rng.Intn(300)] = int32(rng.Intn(4))
	}
	lowITR, err := AdaptiveRepart(g, oldP, 1, Options{K: 4, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	highITR, err := AdaptiveRepart(g, oldP, 1000, Options{K: 4, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	migLow := partition.GraphMigrationVolume(g, oldP, lowITR)
	migHigh := partition.GraphMigrationVolume(g, oldP, highITR)
	cutLow := partition.EdgeCut(g, lowITR)
	cutHigh := partition.EdgeCut(g, highITR)
	// Each solution should win (within heuristic slack) under its own
	// combined objective itr*cut + mig.
	objLowAtLow := 1*cutLow + migLow
	objHighAtLow := 1*cutHigh + migHigh
	if float64(objLowAtLow) > 1.10*float64(objHighAtLow) {
		t.Fatalf("ITR=1 solution loses under its own objective: %d vs %d", objLowAtLow, objHighAtLow)
	}
	objLowAtHigh := 1000*cutLow + migLow
	objHighAtHigh := 1000*cutHigh + migHigh
	if float64(objHighAtHigh) > 1.10*float64(objLowAtHigh) {
		t.Fatalf("ITR=1000 solution loses under its own objective: %d vs %d", objHighAtHigh, objLowAtHigh)
	}
}

func TestAdaptiveRepartValidation(t *testing.T) {
	g := grid(4, 4)
	bad := partition.Partition{K: 2, Parts: make([]int32, 3)} // wrong length
	if _, err := AdaptiveRepart(g, bad, 10, Options{K: 2}); err == nil {
		t.Fatal("expected error for mismatched old partition")
	}
	badPart := partition.New(16, 2)
	badPart.Parts[0] = 9
	if _, err := AdaptiveRepart(g, badPart, 10, Options{K: 2}); err == nil {
		t.Fatal("expected error for out-of-range old part")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 150, 500)
	p1, _ := Partition(g, Options{K: 4, Seed: 43})
	p2, _ := Partition(g, Options{K: 4, Seed: 43})
	for v := range p1.Parts {
		if p1.Parts[v] != p2.Parts[v] {
			t.Fatal("same seed, different result")
		}
	}
}
