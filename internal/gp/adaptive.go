package gp

import (
	"fmt"
	"math/rand"

	"hyperbal/internal/graph"
	"hyperbal/internal/partition"
)

// AdaptiveRepart repartitions g given the previous assignment oldPart,
// implementing the unified multilevel repartitioning scheme used by
// ParMETIS's AdaptiveRepart option (Schloegel, Karypis, Kumar: "A unified
// algorithm for load-balancing adaptive scientific simulations"):
//
//  1. Coarsen with partition-respecting heavy-edge matching (only vertices
//     in the same old part may match), so the inherited partition remains
//     meaningful at every level.
//  2. Use the inherited partition as the coarse solution; rebalance it with
//     forced moves if parts exceed their caps.
//  3. Refine at every level with the combined objective
//     itr*edgecut + migration, where itr plays the role of the paper's α
//     ("Our α corresponds to the ITR parameter in ParMETIS").
//
// The migration term charges size(v) for a vertex resting away from its
// old part, so refinement trades communication quality against data
// movement exactly as the repartitioner the paper benchmarks against.
func AdaptiveRepart(g *graph.Graph, oldPart partition.Partition, itr int64, opt Options) (partition.Partition, error) {
	opt = opt.withDefaults()
	k := opt.K
	if len(oldPart.Parts) != g.NumVertices() {
		return partition.Partition{}, fmt.Errorf("gp: old partition covers %d vertices, graph has %d", len(oldPart.Parts), g.NumVertices())
	}
	for v, p := range oldPart.Parts {
		if p < 0 || int(p) >= k {
			return partition.Partition{}, fmt.Errorf("gp: old part %d of vertex %d out of range [0,%d)", p, v, k)
		}
	}
	out := partition.Partition{Parts: make([]int32, g.NumVertices()), K: k}
	if g.NumVertices() == 0 {
		return out, nil
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	old := append([]int32(nil), oldPart.Parts...)
	levels := coarsen(g, rng, max(opt.CoarsenTo, 2*k), opt.MinShrink, old)

	// Inherited coarse solution.
	coarsest := levels[len(levels)-1]
	parts := append([]int32(nil), coarsest.oldPart...)
	caps := capsFor(coarsest.g, k, opt.Imbalance)
	RefineKway(coarsest.g, k, parts, coarsest.oldPart, itr, caps, opt.RefinePasses*2)

	for i := len(levels) - 2; i >= 0; i-- {
		parts = Project(levels[i].cmap, parts)
		caps := capsFor(levels[i].g, k, opt.Imbalance)
		RefineKway(levels[i].g, k, parts, levels[i].oldPart, itr, caps, opt.RefinePasses)
	}
	copy(out.Parts, parts)
	return out, nil
}
