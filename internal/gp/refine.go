package gp

import (
	"container/heap"
	"math/rand"

	"hyperbal/internal/graph"
)

// ed computes the external-minus-internal degree of v under parts: the FM
// gain of flipping v in a 2-way partition.
func ed(g *graph.Graph, parts []int32, v int) int64 {
	var gain int64
	pv := parts[v]
	adj, wts := g.Adj(v), g.AdjWeights(v)
	for i, u := range adj {
		if parts[u] == pv {
			gain -= wts[i]
		} else {
			gain += wts[i]
		}
	}
	return gain
}

func EdgeCutOf(g *graph.Graph, parts []int32) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		adj, wts := g.Adj(v), g.AdjWeights(v)
		for i, u := range adj {
			if int(u) > v && parts[u] != parts[v] {
				cut += wts[i]
			}
		}
	}
	return cut
}

// ggp2 grows side 0 greedily from a random seed until target0 weight is
// reached (greedy graph growing partitioning).
func ggp2(g *graph.Graph, rng *rand.Rand, target0, cap0 int64) []int32 {
	n := g.NumVertices()
	parts := make([]int32, n)
	for v := range parts {
		parts[v] = 1
	}
	gh := newGainHeap(n)
	dead := make([]bool, n)
	inHeap := make([]bool, n)
	seed := func() bool {
		start := rng.Intn(n)
		for i := 0; i < n; i++ {
			v := (start + i) % n
			if parts[v] == 1 && !inHeap[v] && !dead[v] {
				gh.update(v, ed(g, parts, v))
				inHeap[v] = true
				return true
			}
		}
		return false
	}
	var w0 int64
	for w0 < target0 {
		e, ok := gh.popValid()
		if !ok {
			if !seed() {
				break
			}
			continue
		}
		v := int(e.v)
		inHeap[v] = false
		if parts[v] != 1 {
			continue
		}
		if w0+g.Weight(v) > cap0 {
			dead[v] = true
			continue
		}
		parts[v] = 0
		w0 += g.Weight(v)
		for _, u := range g.Adj(v) {
			if parts[u] == 1 && !dead[u] {
				gh.update(int(u), ed(g, parts, int(u)))
				inHeap[u] = true
			}
		}
	}
	return parts
}

// fm2 refines a 2-way graph partition with FM pass-pairs and prefix
// rollback; returns the final cut.
func fm2(g *graph.Graph, parts []int32, cap0, cap1 int64, maxPasses int) int64 {
	n := g.NumVertices()
	caps := [2]int64{cap0, cap1}
	var w [2]int64
	for v := 0; v < n; v++ {
		w[parts[v]] += g.Weight(v)
	}
	cut := EdgeCutOf(g, parts)
	moved := make([]int32, 0, n)
	locked := make([]bool, n)

	for pass := 0; pass < maxPasses; pass++ {
		gh := newGainHeap(n)
		for v := 0; v < n; v++ {
			locked[v] = false
			gh.update(v, ed(g, parts, v))
		}
		moved = moved[:0]
		cur := cut
		bestPrefix, bestCut := 0, cut
		sinceBest := 0
		limit := n/20 + 50
		var stash []gainEntry

		for {
			e, ok := gh.popValid()
			if !ok {
				break
			}
			v := int(e.v)
			if locked[v] {
				continue
			}
			from := parts[v]
			to := 1 - from
			wv := g.Weight(v)
			if w[to]+wv > caps[to] && !(w[from] > caps[from] && w[to]+wv-caps[to] < w[from]-caps[from]) {
				stash = append(stash, e)
				continue
			}
			for _, se := range stash {
				if !locked[se.v] {
					gh.update(int(se.v), se.gain)
				}
			}
			stash = stash[:0]

			gain := ed(g, parts, v)
			parts[v] = to
			w[from] -= wv
			w[to] += wv
			locked[v] = true
			moved = append(moved, int32(v))
			cur -= gain
			if cur < bestCut {
				bestCut = cur
				bestPrefix = len(moved)
				sinceBest = 0
			} else if sinceBest++; sinceBest > limit {
				break
			}
			for _, u := range g.Adj(v) {
				if !locked[u] {
					gh.update(int(u), ed(g, parts, int(u)))
				}
			}
		}
		// rollback past the best prefix
		for i := len(moved) - 1; i >= bestPrefix; i-- {
			v := int(moved[i])
			from := parts[v]
			parts[v] = 1 - from
			w[from] -= g.Weight(v)
			w[1-from] += g.Weight(v)
		}
		if bestCut >= cut {
			break
		}
		cut = bestCut
	}
	return cut
}

// RefineKway performs greedy k-way refinement passes on a graph partition.
// When oldPart is non-nil it optimizes the combined repartitioning
// objective of the unified scheme: itr*edgecut + migration (equivalently
// edgecut + migration/ITR), where moving v off its old part costs size(v)
// and moving it home refunds size(v). With oldPart nil it minimizes pure
// edge cut (itr ignored). Returns the final edge cut.
func RefineKway(g *graph.Graph, k int, parts []int32, oldPart []int32, itr int64, caps []int64, passes int) int64 {
	if itr < 1 {
		itr = 1
	}
	n := g.NumVertices()
	w := make([]int64, k)
	for v := 0; v < n; v++ {
		w[parts[v]] += g.Weight(v)
	}
	// connectivity per vertex to each part, computed on the fly per vertex
	conn := make([]int64, k)
	touched := make([]int32, 0, k)

	for pass := 0; pass < passes; pass++ {
		improved := false
		for v := 0; v < n; v++ {
			from := parts[v]
			adj, wts := g.Adj(v), g.AdjWeights(v)
			touched = touched[:0]
			for i, u := range adj {
				q := parts[u]
				if conn[q] == 0 {
					touched = append(touched, q)
				}
				conn[q] += wts[i]
			}
			var bestTo, forcedTo int32 = -1, -1
			var bestGain int64 = 0
			var forcedGain int64
			overFrom := w[from] > caps[from]
			consider := func(q int32) {
				if q == from || w[q]+g.Weight(v) > caps[q] {
					return
				}
				// combined gain scaled by itr: itr*(cut reduction) + mig delta
				cutGain := conn[q] - conn[from]
				var migGain int64
				if oldPart != nil {
					if from == oldPart[v] {
						migGain -= g.Size(v) // leaving home: pay migration
					}
					if q == oldPart[v] {
						migGain += g.Size(v) // returning home: refund
					}
				}
				gain := itr*cutGain + migGain
				if gain > bestGain {
					bestGain = gain
					bestTo = q
				}
				// forced candidate: least-bad move out of an over-cap part
				if overFrom && (forcedTo == -1 || gain > forcedGain) {
					forcedGain = gain
					forcedTo = q
				}
			}
			for _, q := range touched {
				consider(q)
			}
			if overFrom && forcedTo == -1 {
				// no adjacent part can take v; consider all parts (diffusion
				// out of a hot region must be able to jump boundaries)
				for q := int32(0); q < int32(k); q++ {
					consider(q)
				}
			}
			for _, q := range touched {
				conn[q] = 0
			}
			to := bestTo
			if bestGain <= 0 {
				to = -1
			}
			if to == -1 && overFrom {
				to = forcedTo
			}
			if to >= 0 {
				w[from] -= g.Weight(v)
				w[to] += g.Weight(v)
				parts[v] = to
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return EdgeCutOf(g, parts)
}

// gainHeap is a lazy max-heap identical in role to hgp's; duplicated here
// to keep gp free of hypergraph dependencies.
type gainEntry struct {
	v     int32
	gain  int64
	stamp uint32
}

type gainHeap struct {
	entries []gainEntry
	stamp   []uint32
}

func newGainHeap(n int) *gainHeap { return &gainHeap{stamp: make([]uint32, n)} }

func (g *gainHeap) Len() int { return len(g.entries) }
func (g *gainHeap) Less(i, j int) bool {
	if g.entries[i].gain != g.entries[j].gain {
		return g.entries[i].gain > g.entries[j].gain
	}
	return g.entries[i].v < g.entries[j].v
}
func (g *gainHeap) Swap(i, j int) { g.entries[i], g.entries[j] = g.entries[j], g.entries[i] }
func (g *gainHeap) Push(x any)    { g.entries = append(g.entries, x.(gainEntry)) }
func (g *gainHeap) Pop() any {
	old := g.entries
	e := old[len(old)-1]
	g.entries = old[:len(old)-1]
	return e
}

func (g *gainHeap) update(v int, gain int64) {
	g.stamp[v]++
	heap.Push(g, gainEntry{v: int32(v), gain: gain, stamp: g.stamp[v]})
}

func (g *gainHeap) popValid() (gainEntry, bool) {
	for g.Len() > 0 {
		e := heap.Pop(g).(gainEntry)
		if e.stamp == g.stamp[e.v] {
			return e, true
		}
	}
	return gainEntry{}, false
}
