package gp

import (
	"math/rand"

	"hyperbal/internal/graph"
)

// level is one rung of the multilevel hierarchy.
type level struct {
	g    *graph.Graph
	cmap []int32
	// oldPart carries the inherited partition labels for adaptive
	// repartitioning (nil for scratch partitioning).
	oldPart []int32
}

// HEM computes a heavy-edge matching: visit vertices in random order, match
// each unmatched vertex to its unmatched neighbor with the heaviest
// connecting edge. If samePart is non-nil, only vertices with equal
// samePart labels may match (partition-respecting coarsening for adaptive
// repartitioning).
func HEM(g *graph.Graph, rng *rand.Rand, samePart []int32) []int32 {
	n := g.NumVertices()
	match := make([]int32, n)
	for v := range match {
		match[v] = -1
	}
	for _, v := range rng.Perm(n) {
		if match[v] != -1 {
			continue
		}
		adj, wts := g.Adj(v), g.AdjWeights(v)
		best := -1
		var bestW int64 = -1
		for i, u := range adj {
			if match[u] != -1 {
				continue
			}
			if samePart != nil && samePart[v] != samePart[u] {
				continue
			}
			if wts[i] > bestW {
				bestW = wts[i]
				best = int(u)
			}
		}
		if best >= 0 {
			match[v] = int32(best)
			match[best] = int32(v)
		} else {
			match[v] = int32(v)
		}
	}
	return match
}

// Contract builds the coarse graph for a matching; returns the coarse graph,
// the coarse map and coarse oldPart labels (nil when oldPart is nil).
func Contract(g *graph.Graph, match []int32, oldPart []int32) (*graph.Graph, []int32, []int32) {
	n := g.NumVertices()
	cmap := make([]int32, n)
	for v := range cmap {
		cmap[v] = -1
	}
	numCoarse := 0
	for v := 0; v < n; v++ {
		if cmap[v] != -1 {
			continue
		}
		u := int(match[v])
		cmap[v] = int32(numCoarse)
		if u != v {
			cmap[u] = int32(numCoarse)
		}
		numCoarse++
	}
	b := graph.NewBuilder(numCoarse)
	var coarseOld []int32
	if oldPart != nil {
		coarseOld = make([]int32, numCoarse)
	}
	wsum := make([]int64, numCoarse)
	ssum := make([]int64, numCoarse)
	for v := 0; v < n; v++ {
		c := cmap[v]
		wsum[c] += g.Weight(v)
		ssum[c] += g.Size(v)
		if coarseOld != nil {
			coarseOld[c] = oldPart[v]
		}
	}
	for c := 0; c < numCoarse; c++ {
		b.SetWeight(c, wsum[c])
		b.SetSize(c, ssum[c])
	}
	// Each undirected fine edge appears as two CSR arcs; take it once via
	// the fine-order guard. AddEdge accumulates parallel coarse edges and
	// drops self-loops (edges internal to a coarse vertex).
	for v := 0; v < n; v++ {
		adj, wts := g.Adj(v), g.AdjWeights(v)
		cv := cmap[v]
		for i, u := range adj {
			if int(u) > v && cmap[u] != cv {
				b.AddEdge(int(cv), int(cmap[u]), wts[i])
			}
		}
	}
	return b.Build(), cmap, coarseOld
}

// coarsen builds the hierarchy until the graph is small or stops shrinking.
func coarsen(g *graph.Graph, rng *rand.Rand, coarsenTo int, minShrink float64, oldPart []int32) []level {
	levels := []level{{g: g, oldPart: oldPart}}
	cur, curOld := g, oldPart
	for cur.NumVertices() > coarsenTo {
		match := HEM(cur, rng, curOld)
		coarse, cmap, coarseOld := Contract(cur, match, curOld)
		if 1-float64(coarse.NumVertices())/float64(cur.NumVertices()) < minShrink {
			break
		}
		levels[len(levels)-1].cmap = cmap
		levels = append(levels, level{g: coarse, oldPart: coarseOld})
		cur, curOld = coarse, coarseOld
	}
	return levels
}

// Project lifts coarse parts to the fine level.
func Project(cmap []int32, coarseParts []int32) []int32 {
	fine := make([]int32, len(cmap))
	for v, c := range cmap {
		fine[v] = coarseParts[c]
	}
	return fine
}
