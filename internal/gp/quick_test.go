package gp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyperbal/internal/graph"
	"hyperbal/internal/partition"
)

func quickGraph(rng *rand.Rand) *graph.Graph {
	n := 20 + rng.Intn(80)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetWeight(v, int64(1+rng.Intn(3)))
		b.SetSize(v, int64(1+rng.Intn(3)))
	}
	for v := 0; v+1 < n; v++ { // connectivity chain
		b.AddEdge(v, v+1, 1)
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v, int64(1+rng.Intn(4)))
		}
	}
	return b.Build()
}

// Property: Partition returns valid, reasonably balanced assignments and
// is deterministic per seed.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng)
		k := 2 + rng.Intn(4)
		p1, err1 := Partition(g, Options{K: k, Imbalance: 0.10, Seed: seed})
		p2, err2 := Partition(g, Options{K: k, Imbalance: 0.10, Seed: seed})
		if err1 != nil || err2 != nil || p1.Validate() != nil {
			return false
		}
		for v := range p1.Parts {
			if p1.Parts[v] != p2.Parts[v] {
				return false
			}
		}
		w := partition.GraphWeights(g, p1)
		return partition.Imbalance(w) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: AdaptiveRepart output is valid, and with a balanced inherited
// partition the combined objective itr*cut + mig never exceeds staying
// put (staying put is feasible, so the greedy must not end up worse).
func TestQuickAdaptiveRepartInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng)
		k := 2 + rng.Intn(4)
		itr := int64(1 + rng.Intn(100))
		old := partition.Partition{K: k, Parts: make([]int32, g.NumVertices())}
		for v := range old.Parts {
			old.Parts[v] = int32(v % k) // balanced round-robin
		}
		got, err := AdaptiveRepart(g, old, itr, Options{K: k, Imbalance: 0.5, Seed: seed})
		if err != nil || got.Validate() != nil {
			return false
		}
		objective := func(p partition.Partition) int64 {
			return itr*partition.EdgeCut(g, p) + partition.GraphMigrationVolume(g, old, p)
		}
		return objective(got) <= objective(old)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: HEM matchings are symmetric involutions over adjacent,
// same-label pairs for arbitrary graphs.
func TestQuickHEMInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := quickGraph(rng)
		labels := make([]int32, g.NumVertices())
		for v := range labels {
			labels[v] = int32(rng.Intn(3))
		}
		match := HEM(g, rng, labels)
		for v := range match {
			u := int(match[v])
			if u < 0 || u >= g.NumVertices() || int(match[u]) != v {
				return false
			}
			if u != v && (labels[u] != labels[v] || !g.HasEdge(u, v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
