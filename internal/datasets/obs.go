package datasets

import "hyperbal/internal/obs"

// obsGenerated counts synthetic dataset generations by registry name, so a
// metrics dump shows which analogues a run actually touched.
var obsGenerated = obs.Default().CounterVec("datasets_generated_total", "name")
