// Package datasets generates deterministic synthetic analogues of the five
// test problems in Table 1 of the paper. The real matrices (xyce680s,
// 2DLipid, auto, apoa1-10, cage14) are not redistributable here, so each
// generator reproduces the dataset's structural fingerprint — family,
// degree spread, density class — at a configurable scale. The experiment
// figures depend on structure class (sparse circuit vs dense geometric vs
// mesh), not on the exact matrices.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hyperbal/internal/graph"
)

// Info describes one dataset: the paper's reported properties and the
// scaled synthetic default.
type Info struct {
	Name   string
	Family string // generator family
	Area   string // application area from Table 1

	// Paper-reported properties (Table 1).
	PaperV, PaperE           int
	PaperMinDeg, PaperMaxDeg int
	PaperAvgDeg              float64

	// DefaultV is the laptop-scale vertex count used by the harness.
	DefaultV int
}

// Registry lists the five Table 1 datasets in paper order.
var Registry = []Info{
	{Name: "xyce680s", Family: "circuit", Area: "VLSI design",
		PaperV: 682712, PaperE: 823232, PaperMinDeg: 1, PaperMaxDeg: 209, PaperAvgDeg: 2.4, DefaultV: 6000},
	{Name: "2DLipid", Family: "geometric-dense", Area: "Polymer DFT",
		PaperV: 4368, PaperE: 2793988, PaperMinDeg: 396, PaperMaxDeg: 1984, PaperAvgDeg: 1279.3, DefaultV: 900},
	{Name: "auto", Family: "fem-mesh", Area: "Structural analysis",
		PaperV: 448695, PaperE: 3314611, PaperMinDeg: 4, PaperMaxDeg: 37, PaperAvgDeg: 14.8, DefaultV: 6000},
	{Name: "apoa1-10", Family: "md-cutoff", Area: "Molecular dynamics",
		PaperV: 92224, PaperE: 17100850, PaperMinDeg: 54, PaperMaxDeg: 503, PaperAvgDeg: 370.9, DefaultV: 1500},
	{Name: "cage14", Family: "lattice", Area: "DNA electrophoresis",
		PaperV: 1505785, PaperE: 13565176, PaperMinDeg: 3, PaperMaxDeg: 41, PaperAvgDeg: 18.0, DefaultV: 6000},
}

// Lookup returns the Info for a dataset name.
func Lookup(name string) (Info, error) {
	for _, d := range Registry {
		if d.Name == name {
			return d, nil
		}
	}
	return Info{}, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
}

// Names returns the registry's dataset names in order.
func Names() []string {
	out := make([]string, len(Registry))
	for i, d := range Registry {
		out[i] = d.Name
	}
	return out
}

// Generate builds the synthetic analogue of the named dataset with n
// vertices (n <= 0 selects the registry default). Same name, n and seed
// always produce the same graph.
func Generate(name string, n int, seed int64) (*graph.Graph, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	obsGenerated.With(info.Name).Inc()
	if n <= 0 {
		n = info.DefaultV
	}
	rng := rand.New(rand.NewSource(seed))
	switch info.Family {
	case "circuit":
		return genCircuit(n, rng), nil
	case "geometric-dense":
		return genGeometricDense(n, info.PaperAvgDeg/float64(info.PaperV), rng), nil
	case "fem-mesh":
		return genFEMMesh(n, rng), nil
	case "md-cutoff":
		return genMDCutoff(n, rng), nil
	case "lattice":
		return genLattice(n, rng), nil
	default:
		return nil, fmt.Errorf("datasets: no generator for family %q", info.Family)
	}
}

// genCircuit produces a sparse circuit-like graph: a spanning tree built by
// preferential attachment (hubs emerge, like power/clock nets), plus a few
// extra random edges. Matches xyce680s's fingerprint: avg degree ~2.4,
// min 1, highly skewed maximum.
func genCircuit(n int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	// Preferential attachment tree with repeated-endpoint bias.
	endpoints := make([]int32, 0, 4*n)
	endpoints = append(endpoints, 0)
	for v := 1; v < n; v++ {
		u := int(endpoints[rng.Intn(len(endpoints))])
		b.AddEdge(v, u, 1)
		endpoints = append(endpoints, int32(v), int32(u))
	}
	// Extra edges to lift avg degree to ~2.4 (tree gives 2 - 2/n).
	extra := n / 5
	for i := 0; i < extra; i++ {
		u := int(endpoints[rng.Intn(len(endpoints))])
		v := rng.Intn(n)
		if u != v {
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

// genGeometricDense produces a dense geometric graph like 2DLipid: points
// in the unit square connected within a radius chosen so the average
// degree is densityFrac*n (2DLipid: ~0.29 |V|).
func genGeometricDense(n int, densityFrac float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for v := 0; v < n; v++ {
		xs[v] = rng.Float64()
		ys[v] = rng.Float64()
	}
	// Average degree of a random geometric graph in the unit square is
	// about n*pi*r^2 (ignoring boundary); solve for r.
	wantDeg := densityFrac * float64(n)
	r := math.Sqrt(wantDeg / (float64(n) * math.Pi))
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				b.AddEdge(u, v, 1)
			}
		}
	}
	return b.Build()
}

// genFEMMesh produces an auto-like 3D finite-element mesh: a grid with
// face and edge-diagonal neighbors (18-point stencil thinned to ~15) and
// slight irregularity from random node removal.
func genFEMMesh(n int, rng *rand.Rand) *graph.Graph {
	side := int(math.Cbrt(float64(n)) + 0.5)
	if side < 2 {
		side = 2
	}
	dims := [3]int{side, side, (n + side*side - 1) / (side * side)}
	if dims[2] < 2 {
		dims[2] = 2
	}
	total := dims[0] * dims[1] * dims[2]
	id := func(x, y, z int) int { return (z*dims[1]+y)*dims[0] + x }
	present := make([]bool, total)
	var kept []int32
	newID := make([]int32, total)
	for i := range newID {
		newID[i] = -1
	}
	order := rng.Perm(total)
	for _, i := range order {
		if len(kept) >= n {
			break
		}
		present[i] = true
		newID[i] = int32(len(kept))
		kept = append(kept, int32(i))
	}
	b := graph.NewBuilder(len(kept))
	// face neighbors + edge diagonals = 18-point stencil
	var offsets [][3]int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				nz := abs(dx) + abs(dy) + abs(dz)
				if nz == 1 || nz == 2 {
					offsets = append(offsets, [3]int{dx, dy, dz})
				}
			}
		}
	}
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				u := id(x, y, z)
				if !present[u] {
					continue
				}
				for _, o := range offsets {
					xx, yy, zz := x+o[0], y+o[1], z+o[2]
					if xx < 0 || yy < 0 || zz < 0 || xx >= dims[0] || yy >= dims[1] || zz >= dims[2] {
						continue
					}
					v := id(xx, yy, zz)
					if present[v] && v > u {
						b.AddEdge(int(newID[u]), int(newID[v]), 1)
					}
				}
			}
		}
	}
	return b.Build()
}

// genMDCutoff produces an apoa1-like molecular-dynamics interaction graph:
// clustered 3D points with a cutoff radius giving a dense-ish neighborhood
// (scaled-down average degree around 0.1 n).
func genMDCutoff(n int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	// Points in clusters (residues) placed in a slab, like a solvated
	// protein; cutoff tuned to ~0.1 n average degree.
	numClusters := n / 20
	if numClusters < 1 {
		numClusters = 1
	}
	cx := make([]float64, numClusters)
	cy := make([]float64, numClusters)
	cz := make([]float64, numClusters)
	for c := range cx {
		cx[c], cy[c], cz[c] = rng.Float64(), rng.Float64(), rng.Float64()*0.3
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	for v := 0; v < n; v++ {
		c := rng.Intn(numClusters)
		xs[v] = cx[c] + rng.NormFloat64()*0.03
		ys[v] = cy[c] + rng.NormFloat64()*0.03
		zs[v] = cz[c] + rng.NormFloat64()*0.03
	}
	wantDeg := 0.10 * float64(n)
	// Effective volume is roughly 1*1*0.3 with clustering boost ~3x; start
	// from the uniform-slab estimate and let the exact degree float.
	vol := 0.3
	r := math.Cbrt(wantDeg * vol * 3.0 / (4.0 * math.Pi * float64(n) * 3.0))
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy, dz := xs[u]-xs[v], ys[u]-ys[v], zs[u]-zs[v]
			if dx*dx+dy*dy+dz*dz <= r2 {
				b.AddEdge(u, v, 1)
			}
		}
	}
	return b.Build()
}

// genLattice produces a cage14-like regular sparse graph: a 3D lattice
// with face + edge-diagonal neighbors (average degree ~18, narrow spread),
// the fingerprint of DNA-electrophoresis transition matrices.
func genLattice(n int, rng *rand.Rand) *graph.Graph {
	side := int(math.Cbrt(float64(n)) + 0.999)
	id := func(x, y, z int) int { return (z*side+y)*side + x }
	total := side * side * side
	b := graph.NewBuilder(n)
	var offsets [][3]int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				nz := abs(dx) + abs(dy) + abs(dz)
				if nz == 1 || nz == 2 {
					offsets = append(offsets, [3]int{dx, dy, dz})
				}
			}
		}
	}
	for z := 0; z < side; z++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				u := id(x, y, z)
				if u >= n {
					continue
				}
				for _, o := range offsets {
					xx, yy, zz := x+o[0], y+o[1], z+o[2]
					if xx < 0 || yy < 0 || zz < 0 || xx >= side || yy >= side || zz >= side {
						continue
					}
					v := id(xx, yy, zz)
					if v < n && v > u {
						b.AddEdge(u, v, 1)
					}
				}
			}
		}
	}
	_ = total
	_ = rng
	return b.Build()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Fingerprint compares a generated analogue against the paper's dataset on
// scale-free characteristics: degree-spread ratio (max/avg) and density
// class.
type Fingerprint struct {
	Name            string
	V, E            int
	MinDeg, MaxDeg  int
	AvgDeg          float64
	PaperAvgDeg     float64
	DegSpread       float64 // max/avg of the analogue
	PaperDegSpread  float64 // max/avg of the paper dataset
	DensityFraction float64 // avgdeg / |V|
	PaperDensity    float64
}

// FingerprintOf computes the comparison record for a generated graph.
func FingerprintOf(info Info, g *graph.Graph) Fingerprint {
	s := graph.ComputeStats(g)
	f := Fingerprint{
		Name:           info.Name,
		V:              s.NumVertices,
		E:              s.NumEdges,
		MinDeg:         s.MinDegree,
		MaxDeg:         s.MaxDegree,
		AvgDeg:         s.AvgDegree,
		PaperAvgDeg:    info.PaperAvgDeg,
		PaperDegSpread: float64(info.PaperMaxDeg) / info.PaperAvgDeg,
		PaperDensity:   info.PaperAvgDeg / float64(info.PaperV),
	}
	if s.AvgDegree > 0 {
		f.DegSpread = float64(s.MaxDegree) / s.AvgDegree
	}
	if s.NumVertices > 0 {
		f.DensityFraction = s.AvgDegree / float64(s.NumVertices)
	}
	return f
}

// SortedRegistryNames returns names sorted alphabetically (for stable CLI
// help output).
func SortedRegistryNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
