package datasets

import (
	"testing"

	"hyperbal/internal/graph"
)

func TestRegistryComplete(t *testing.T) {
	if len(Registry) != 5 {
		t.Fatalf("registry has %d datasets, want the 5 of Table 1", len(Registry))
	}
	want := []string{"xyce680s", "2DLipid", "auto", "apoa1-10", "cage14"}
	for i, name := range want {
		if Registry[i].Name != name {
			t.Fatalf("registry[%d] = %q, want %q (paper order)", i, Registry[i].Name, name)
		}
	}
}

func TestLookup(t *testing.T) {
	info, err := Lookup("auto")
	if err != nil {
		t.Fatal(err)
	}
	if info.PaperV != 448695 || info.PaperAvgDeg != 14.8 {
		t.Fatalf("auto info wrong: %+v", info)
	}
	if _, err := Lookup("nosuch"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestGenerateAllValidateAndScale(t *testing.T) {
	for _, info := range Registry {
		n := info.DefaultV / 4 // small for test speed
		g, err := Generate(info.Name, n, 1)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if got := g.NumVertices(); got < n/2 || got > n+n/2 {
			t.Fatalf("%s: generated %d vertices, want ~%d", info.Name, got, n)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: no edges", info.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, _ := Generate("xyce680s", 1000, 7)
	g2, _ := Generate("xyce680s", 1000, 7)
	s1, s2 := graph.ComputeStats(g1), graph.ComputeStats(g2)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	g3, _ := Generate("xyce680s", 1000, 8)
	if graph.ComputeStats(g3) == s1 {
		t.Fatal("different seed produced identical stats (suspicious)")
	}
}

func TestGenerateDefaultSize(t *testing.T) {
	g, err := Generate("2DLipid", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := Lookup("2DLipid")
	if g.NumVertices() != info.DefaultV {
		t.Fatalf("default |V| = %d, want %d", g.NumVertices(), info.DefaultV)
	}
}

// Structural fingerprints: each family must land in the right density and
// degree-spread class, since the figures depend on these properties.
func TestFingerprints(t *testing.T) {
	type bounds struct {
		minAvg, maxAvg       float64 // analogue average degree range
		minSpread            float64 // min max/avg ratio (skew)
		maxSpread            float64
		densityLo, densityHi float64 // avgdeg/|V| range
	}
	cases := map[string]bounds{
		// sparse and highly skewed, like a circuit
		"xyce680s": {minAvg: 1.5, maxAvg: 5, minSpread: 5, maxSpread: 200, densityLo: 0, densityHi: 0.01},
		// very dense: avg degree a large fraction of |V|
		"2DLipid": {minAvg: 100, maxAvg: 500, minSpread: 1, maxSpread: 3, densityLo: 0.1, densityHi: 0.6},
		// medium, regular mesh
		"auto": {minAvg: 8, maxAvg: 20, minSpread: 1, maxSpread: 2.5, densityLo: 0, densityHi: 0.05},
		// dense-ish MD neighborhoods
		"apoa1-10": {minAvg: 50, maxAvg: 400, minSpread: 1, maxSpread: 6, densityLo: 0.02, densityHi: 0.4},
		// regular lattice, narrow spread
		"cage14": {minAvg: 12, maxAvg: 20, minSpread: 1, maxSpread: 2, densityLo: 0, densityHi: 0.05},
	}
	for _, info := range Registry {
		g, err := Generate(info.Name, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		f := FingerprintOf(info, g)
		b := cases[info.Name]
		if f.AvgDeg < b.minAvg || f.AvgDeg > b.maxAvg {
			t.Errorf("%s: avg degree %.1f outside [%g,%g]", info.Name, f.AvgDeg, b.minAvg, b.maxAvg)
		}
		if f.DegSpread < b.minSpread || f.DegSpread > b.maxSpread {
			t.Errorf("%s: degree spread %.1f outside [%g,%g]", info.Name, f.DegSpread, b.minSpread, b.maxSpread)
		}
		if f.DensityFraction < b.densityLo || f.DensityFraction > b.densityHi {
			t.Errorf("%s: density %.4f outside [%g,%g]", info.Name, f.DensityFraction, b.densityLo, b.densityHi)
		}
	}
}

func TestSortedRegistryNames(t *testing.T) {
	names := SortedRegistryNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}
