// Package mtx reads MatrixMarket coordinate files — the distribution
// format of the paper's test matrices (xyce680s, auto, apoa1-10, cage14
// are all published as .mtx) — and converts them into hyperbal's graph and
// hypergraph models:
//
//   - ToGraph symmetrizes the pattern into an undirected graph (the input
//     the graph baselines need);
//   - ToHypergraph builds the column-net model of Catalyurek & Aykanat [5]:
//     vertex i = row i, net j = {j} ∪ {i : a_ij ≠ 0}, exact for sparse
//     matrix-vector multiply communication, symmetric or not.
package mtx

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hyperbal/internal/graph"
	"hyperbal/internal/hypergraph"
)

// Matrix is a parsed MatrixMarket coordinate pattern.
type Matrix struct {
	Rows, Cols int
	// Entries are (row, col) coordinates, 0-based, with explicit symmetric
	// counterparts already expanded when the header declared symmetry.
	// Diagonal entries are retained.
	RowIdx, ColIdx []int32
	Symmetric      bool
}

// NumEntries returns the number of stored (expanded) entries.
func (m *Matrix) NumEntries() int { return len(m.RowIdx) }

// Read parses a MatrixMarket coordinate file. Value fields (real, integer,
// complex) are accepted and ignored; only the pattern matters for
// partitioning. Supported qualifiers: general, symmetric (expanded),
// skew-symmetric (expanded, pattern-wise), pattern.
func Read(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)

	if !sc.Scan() {
		return nil, fmt.Errorf("mtx: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("mtx: not a MatrixMarket matrix header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("mtx: only coordinate format supported, got %q", header[2])
	}
	sym := false
	if len(header) >= 5 {
		switch header[4] {
		case "general":
		case "symmetric", "skew-symmetric", "hermitian":
			sym = true
		default:
			return nil, fmt.Errorf("mtx: unsupported symmetry %q", header[4])
		}
	}

	// size line (skipping comments)
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("mtx: bad size line %q: %v", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("mtx: bad dimensions %dx%d nnz=%d", rows, cols, nnz)
	}

	m := &Matrix{Rows: rows, Cols: cols, Symmetric: sym}
	read := 0
	for sc.Scan() && read < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("mtx: bad entry line %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mtx: bad row index %q", fields[0])
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mtx: bad column index %q", fields[1])
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mtx: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		m.RowIdx = append(m.RowIdx, int32(i-1))
		m.ColIdx = append(m.ColIdx, int32(j-1))
		if sym && i != j {
			m.RowIdx = append(m.RowIdx, int32(j-1))
			m.ColIdx = append(m.ColIdx, int32(i-1))
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read != nnz {
		return nil, fmt.Errorf("mtx: expected %d entries, found %d", nnz, read)
	}
	return m, nil
}

// ToGraph builds the undirected graph of the symmetrized pattern
// A + Aᵀ (square matrices only): one unit-weight edge per off-diagonal
// pair. This is the form graph partitioners require.
func ToGraph(m *Matrix) (*graph.Graph, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("mtx: graph model needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	b := graph.NewBuilder(m.Rows)
	seen := make(map[int64]struct{}, len(m.RowIdx))
	for e := range m.RowIdx {
		i, j := m.RowIdx[e], m.ColIdx[e]
		if i == j {
			continue
		}
		a, bb := i, j
		if a > bb {
			a, bb = bb, a
		}
		key := int64(a)<<32 | int64(bb)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(int(i), int(j), 1)
	}
	return b.Build(), nil
}

// ToHypergraph builds the column-net hypergraph model: vertices are rows;
// net j contains row j (the owner of x_j, for square matrices) plus every
// row with a nonzero in column j. Nets with fewer than two pins are
// dropped (never cut). Non-square matrices use only the nonzero rows per
// column (the rectangular column-net model).
func ToHypergraph(m *Matrix) (*hypergraph.Hypergraph, error) {
	b := hypergraph.NewBuilder(m.Rows)
	cols := make([][]int32, m.Cols)
	for e := range m.RowIdx {
		cols[m.ColIdx[e]] = append(cols[m.ColIdx[e]], m.RowIdx[e])
	}
	square := m.Rows == m.Cols
	var pins []int
	for j := 0; j < m.Cols; j++ {
		pins = pins[:0]
		seen := make(map[int32]struct{}, len(cols[j])+1)
		if square {
			seen[int32(j)] = struct{}{}
			pins = append(pins, j)
		}
		for _, i := range cols[j] {
			if _, dup := seen[i]; !dup {
				seen[i] = struct{}{}
				pins = append(pins, int(i))
			}
		}
		if len(pins) >= 2 {
			b.AddNet(1, pins...)
		}
	}
	return b.Build(), nil
}
