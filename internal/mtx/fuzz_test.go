package mtx

import (
	"bytes"
	"testing"
)

// FuzzRead asserts the MatrixMarket reader never panics, that parsed
// matrices satisfy their index invariants, and that the graph/hypergraph
// conversions stay within bounds on whatever Read accepts.
func FuzzRead(f *testing.F) {
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1.0\n2 3 4.0\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n4 4 3\n1 2\n2 3\n4 4\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate integer skew-symmetric\n3 3 1\n2 1 -5\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 5 2\n1 4 1\n2 5 1\n"))
	f.Add([]byte("%%MatrixMarket matrix array real general\n2 2\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.Rows <= 0 || m.Cols <= 0 {
			t.Fatalf("accepted non-positive dimensions %dx%d", m.Rows, m.Cols)
		}
		if len(m.RowIdx) != len(m.ColIdx) {
			t.Fatalf("index slices diverge: %d vs %d", len(m.RowIdx), len(m.ColIdx))
		}
		for e := range m.RowIdx {
			if m.RowIdx[e] < 0 || int(m.RowIdx[e]) >= m.Rows {
				t.Fatalf("entry %d: row %d outside [0,%d)", e, m.RowIdx[e], m.Rows)
			}
			if m.ColIdx[e] < 0 || int(m.ColIdx[e]) >= m.Cols {
				t.Fatalf("entry %d: col %d outside [0,%d)", e, m.ColIdx[e], m.Cols)
			}
		}
		// The converters allocate O(rows+cols); skip giants, convert the rest.
		if m.Rows > 1<<20 || m.Cols > 1<<20 {
			t.Skip("absurd dimensions")
		}
		if m.Rows == m.Cols {
			g, err := ToGraph(m)
			if err != nil {
				t.Fatalf("ToGraph on a square parsed matrix: %v", err)
			}
			if g.NumVertices() != m.Rows {
				t.Fatalf("graph has %d vertices, matrix %d rows", g.NumVertices(), m.Rows)
			}
		}
		h, err := ToHypergraph(m)
		if err != nil {
			t.Fatalf("ToHypergraph on a parsed matrix: %v", err)
		}
		if h.NumVertices() != m.Rows {
			t.Fatalf("hypergraph has %d vertices, matrix %d rows", h.NumVertices(), m.Rows)
		}
		if h.NumNets() > m.Cols {
			t.Fatalf("hypergraph has %d nets, matrix %d columns", h.NumNets(), m.Cols)
		}
	})
}
