package mtx

import (
	"strconv"
	"strings"
	"testing"
)

const general = `%%MatrixMarket matrix coordinate real general
% a 4x4 non-symmetric pattern
4 4 5
1 2 1.5
2 3 -2.0
3 1 0.5
4 4 9.0
2 1 1.0
`

const symmetric = `%%MatrixMarket matrix coordinate pattern symmetric
3 3 3
2 1
3 1
3 3
`

func TestReadGeneral(t *testing.T) {
	m, err := Read(strings.NewReader(general))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 4 || m.Cols != 4 || m.NumEntries() != 5 {
		t.Fatalf("parsed %+v", m)
	}
	if m.Symmetric {
		t.Fatal("general matrix flagged symmetric")
	}
}

func TestReadSymmetricExpands(t *testing.T) {
	m, err := Read(strings.NewReader(symmetric))
	if err != nil {
		t.Fatal(err)
	}
	// 2 off-diagonal entries expand to 4, diagonal stays 1.
	if m.NumEntries() != 5 {
		t.Fatalf("entries = %d, want 5", m.NumEntries())
	}
	if !m.Symmetric {
		t.Fatal("symmetric flag lost")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n1 1 0\n",
		"%%MatrixMarket matrix array real general\n2 2 0\n",
		"%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n", // out of range
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", // short
		"%%MatrixMarket matrix coordinate real weird\n2 2 0\n",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestToGraph(t *testing.T) {
	m, _ := Read(strings.NewReader(general))
	g, err := ToGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// off-diagonal pairs: (1,2) [twice, dedup], (2,3), (3,1) -> 3 edges
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("expected symmetrized edges missing")
	}
}

func TestToGraphRectangularRejected(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToGraph(m); err == nil {
		t.Fatal("expected rejection of rectangular matrix")
	}
}

func TestToHypergraphColumnNet(t *testing.T) {
	m, _ := Read(strings.NewReader(general))
	h, err := ToHypergraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// column 1: rows {3,2} + owner 1 -> 3 pins
	// column 2: rows {1} + owner 2 -> 2 pins
	// column 3: rows {2} + owner 3 -> 2 pins
	// column 4: rows {4} + owner 4 -> 1 pin (dropped)
	if h.NumNets() != 3 {
		t.Fatalf("nets = %d, want 3", h.NumNets())
	}
	sizes := map[int]int{}
	for n := 0; n < h.NumNets(); n++ {
		sizes[h.NetSize(n)]++
	}
	if sizes[3] != 1 || sizes[2] != 2 {
		t.Fatalf("net size histogram %v, want {3:1, 2:2}", sizes)
	}
}

func TestToHypergraphRectangular(t *testing.T) {
	// 3x2 rectangular: column nets over rows only, no owner row.
	in := "%%MatrixMarket matrix coordinate pattern general\n3 2 4\n1 1\n2 1\n3 2\n1 2\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	h, err := ToHypergraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 3 || h.NumNets() != 2 {
		t.Fatalf("got %v", h)
	}
}

func TestRoundTripThroughPartitioner(t *testing.T) {
	// A banded 20x20 matrix: the column-net hypergraph partitions cleanly.
	var sb strings.Builder
	sb.WriteString("%%MatrixMarket matrix coordinate pattern general\n20 20 38\n")
	for i := 1; i < 20; i++ {
		sb.WriteString(strings.Join([]string{itoa(i), itoa(i + 1)}, " ") + "\n")
		sb.WriteString(strings.Join([]string{itoa(i + 1), itoa(i)}, " ") + "\n")
	}
	m, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	h, err := ToHypergraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 20 {
		t.Fatalf("vertices = %d", h.NumVertices())
	}
	g, err := ToGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 19 {
		t.Fatalf("edges = %d, want 19", g.NumEdges())
	}
}

func itoa(x int) string { return strconv.Itoa(x) }
