package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, the unit of the JSON
// exposition and of the -metrics-json CI golden checks.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot is one histogram's cumulative state.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one non-cumulative bucket. Le is the upper bound;
// the +Inf bucket is rendered with Le = -1.
type BucketSnapshot struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, key := range r.sortedKeys() {
		m := r.get(key)
		if m == nil {
			continue
		}
		switch m.kind {
		case kindCounter:
			s.Counters[key] = m.c.Load()
		case kindGauge:
			s.Gauges[key] = m.g.Load()
		case kindHistogram:
			hs := HistogramSnapshot{Count: m.h.Count(), Sum: m.h.Sum()}
			for i := range m.h.counts {
				le := int64(-1)
				if i < len(m.h.bounds) {
					le = m.h.bounds[i]
				}
				hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: le, Count: m.h.counts[i].Load()})
			}
			s.Histograms[key] = hs
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Family splits a registry key into its family name (the part before any
// label block).
func Family(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// labelsOf returns the label block of a key including braces ("" if none).
func labelsOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[i:]
	}
	return ""
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format. Histograms use cumulative buckets with an integer `le` (stage
// timers are in nanoseconds, hence the *_ns families).
func (r *Registry) WritePrometheus(w io.Writer) {
	// Group series by family so each family gets exactly one TYPE line.
	type series struct {
		key string
		m   *metric
	}
	families := map[string][]series{}
	var order []string
	for _, key := range r.sortedKeys() {
		m := r.get(key)
		if m == nil {
			continue
		}
		fam := m.family
		if _, ok := families[fam]; !ok {
			order = append(order, fam)
		}
		families[fam] = append(families[fam], series{key: key, m: m})
	}
	for _, fam := range order {
		ss := families[fam]
		switch ss[0].m.kind {
		case kindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n", fam)
			for _, s := range ss {
				fmt.Fprintf(w, "%s %d\n", s.key, s.m.c.Load())
			}
		case kindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
			for _, s := range ss {
				fmt.Fprintf(w, "%s %d\n", s.key, s.m.g.Load())
			}
		case kindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
			for _, s := range ss {
				h := s.m.h
				labels := labelsOf(s.key)
				var cum int64
				for i := range h.counts {
					cum += h.counts[i].Load()
					le := "+Inf"
					if i < len(h.bounds) {
						le = fmt.Sprintf("%d", h.bounds[i])
					}
					fmt.Fprintf(w, "%s_bucket%s %d\n", fam, mergeLabels(labels, `le="`+le+`"`), cum)
				}
				fmt.Fprintf(w, "%s_sum%s %d\n", fam, labels, h.Sum())
				fmt.Fprintf(w, "%s_count%s %d\n", fam, labels, h.Count())
			}
		}
	}
}

// mergeLabels merges an existing label block (possibly "") with one more
// rendered label.
func mergeLabels(block, extra string) string {
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}
