package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// Handler serves the registry: Prometheus text at the mount point, JSON
// when the request has ?format=json.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
}

// NewMux returns the debug mux: /metrics (Prometheus text, ?format=json
// for JSON), /metrics.json, and the /debug/pprof endpoints.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ShutdownGrace bounds how long Serve's shutdown func waits for in-flight
// scrapes before closing remaining connections hard.
const ShutdownGrace = 5 * time.Second

// Serve starts the debug HTTP server on addr in the background and
// returns the bound address (useful with ":0") and a shutdown func. The
// shutdown func drains gracefully: it stops accepting new connections and
// waits up to ShutdownGrace for in-flight scrapes to complete (a plain
// Close would drop a scrape that raced process exit). Callers should
// defer it so final /metrics reads observe the complete run.
func Serve(addr string, r *Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}, nil
}

// DumpJSONFile writes the registry snapshot to path ("-" means stdout).
func DumpJSONFile(path string, r *Registry) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
