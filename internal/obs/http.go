package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Handler serves the registry: Prometheus text at the mount point, JSON
// when the request has ?format=json.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.WritePrometheus(w)
	})
}

// NewMux returns the debug mux: /metrics (Prometheus text, ?format=json
// for JSON), /metrics.json, and the /debug/pprof endpoints.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug HTTP server on addr in the background and
// returns the bound address (useful with ":0") and a shutdown func. The
// server is best-effort observability: request errors are ignored, and
// the caller typically lets process exit tear it down.
func Serve(addr string, r *Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// DumpJSONFile writes the registry snapshot to path ("-" means stdout).
func DumpJSONFile(path string, r *Registry) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
