// Package obs is the pipeline-wide observability layer: a lightweight
// metrics subsystem with atomic counters, gauges and fixed-bucket
// histograms in a named registry, plus stage-scoped timing helpers.
//
// Design constraints, in order:
//
//   - Allocation-free on the hot path. Handles (Counter, Gauge, Histogram)
//     are registered once — typically in package-level vars — and the
//     per-event operations (Add, Set, Observe, ObserveSince) are a bounded
//     number of atomic instructions with no locking and no allocation.
//     Registration itself takes the registry lock and may allocate; do it
//     at init time, not per event.
//   - Safe for concurrent use everywhere: the partitioners run under
//     worker pools and SPMD rank goroutines, so every metric is atomic.
//   - Cheap enough to stay on in production: the Figure-7 repartitioning
//     hot path carries the full instrumentation at under 2% overhead
//     (see BENCH_repart.json).
//
// Metrics have a family name (Prometheus conventions: snake_case, unit
// suffix) and an optional label set rendered into the registry key, e.g.
// `hgp_refine_ns{level="3"}`. The *Vec types cache label children so the
// steady state does a read-locked map (or slice) lookup only when a new
// child appears.
//
// Exposition: WritePrometheus (text format), WriteJSON / Snapshot
// (structured, used by the -metrics-json CI golden checks), and an HTTP
// handler with /debug/pprof mounted (http.go).
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic last-value metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax raises the gauge to n if n is larger (a high-water mark).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram over int64 samples.
// Bounds are upper bucket edges (ascending); an implicit +Inf bucket
// catches the rest. Observe is lock- and allocation-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveSince records the nanoseconds elapsed since start — the stage
// timer primitive: `defer h.ObserveSince(time.Now())` brackets a stage.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed samples
// by linear interpolation within the bucket that crosses the target rank.
// The +Inf bucket is approximated by its lower edge. Returns 0 with no
// samples. The estimate is read under concurrent Observe calls; it is a
// monitoring-grade approximation, not an exact order statistic.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= target {
			if i >= len(h.bounds) { // +Inf bucket: report its lower edge
				if len(h.bounds) == 0 {
					return h.sum.Load() / total
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// ExpBounds returns n exponential bucket bounds start, start*factor, ...
func ExpBounds(start, factor int64, n int) []int64 {
	bounds := make([]int64, n)
	b := start
	for i := range bounds {
		bounds[i] = b
		b *= factor
	}
	return bounds
}

// LinBounds returns n linear bucket bounds start, start+step, ...
func LinBounds(start, step int64, n int) []int64 {
	bounds := make([]int64, n)
	for i := range bounds {
		bounds[i] = start + int64(i)*step
	}
	return bounds
}

// DurationBounds covers 1µs .. ~8.6s in doubling nanosecond buckets, the
// default for *_ns stage timers.
var DurationBounds = ExpBounds(1000, 2, 24)

// SizeBounds covers 1 .. ~10^9 in ×4 buckets, the default for counts of
// things (vertices, nets, moves).
var SizeBounds = ExpBounds(1, 4, 16)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered series: a family name plus rendered labels.
type metric struct {
	family string
	labels string // `k="v"` rendering, "" for unlabeled
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// key returns the registry key (family plus label block).
func (m *metric) key() string {
	if m.labels == "" {
		return m.family
	}
	return m.family + "{" + m.labels + "}"
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	order   []string // registration order, for stable-ish output grouping
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the pipeline instruments into.
func Default() *Registry { return defaultRegistry }

// renderLabels turns k,v pairs into a canonical `k="v",k2="v2"` block.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	s := ""
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			s += ","
		}
		s += kv[i] + `="` + kv[i+1] + `"`
	}
	return s
}

// lookup returns the registered metric for key, verifying its kind, or
// registers a new one built by mk.
func (r *Registry) lookup(family, labels string, kind metricKind, mk func() *metric) *metric {
	key := family
	if labels != "" {
		key = family + "{" + labels + "}"
	}
	r.mu.RLock()
	m := r.metrics[key]
	r.mu.RUnlock()
	if m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", key))
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.metrics[key]; m != nil {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", key))
		}
		return m
	}
	m = mk()
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m
}

// Counter returns (registering if needed) the named counter. kv are
// optional label key,value pairs.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	labels := renderLabels(kv)
	m := r.lookup(name, labels, kindCounter, func() *metric {
		return &metric{family: name, labels: labels, kind: kindCounter, c: &Counter{}}
	})
	return m.c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	labels := renderLabels(kv)
	m := r.lookup(name, labels, kindGauge, func() *metric {
		return &metric{family: name, labels: labels, kind: kindGauge, g: &Gauge{}}
	})
	return m.g
}

// Histogram returns (registering if needed) the named histogram. The
// bounds of the first registration win; later calls may pass nil.
func (r *Registry) Histogram(name string, bounds []int64, kv ...string) *Histogram {
	labels := renderLabels(kv)
	m := r.lookup(name, labels, kindHistogram, func() *metric {
		if len(bounds) == 0 {
			bounds = DurationBounds
		}
		h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		return &metric{family: name, labels: labels, kind: kindHistogram, h: h}
	})
	return m.h
}

// Reset zeroes every registered metric in place. Handles held by callers
// stay valid. Intended for tests and for before/after overhead runs.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.metrics {
		switch m.kind {
		case kindCounter:
			m.c.v.Store(0)
		case kindGauge:
			m.g.v.Store(0)
		case kindHistogram:
			for i := range m.h.counts {
				m.h.counts[i].Store(0)
			}
			m.h.sum.Store(0)
			m.h.count.Store(0)
		}
	}
}

// sortedKeys returns all registry keys sorted, grouping a family's series
// together (label block sorts after the bare family name).
func (r *Registry) sortedKeys() []string {
	r.mu.RLock()
	keys := append([]string(nil), r.order...)
	r.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// get returns the metric for a key (nil if missing).
func (r *Registry) get(key string) *metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.metrics[key]
}

// CounterVec is a counter family with one variable label, caching children
// so the steady state is a read-locked map hit.
type CounterVec struct {
	r     *Registry
	name  string
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// CounterVec returns a counter family keyed by one label.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	return &CounterVec{r: r, name: name, label: label, m: map[string]*Counter{}}
}

// With returns the child counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	c = v.r.Counter(v.name, v.label, value)
	v.mu.Lock()
	v.m[value] = c
	v.mu.Unlock()
	return c
}

// HistogramVec is a histogram family with one variable label. Children
// addressed by small integer (At) are cached in a slice, so per-level
// stage timers are allocation-free after first use of each level.
type HistogramVec struct {
	r      *Registry
	name   string
	label  string
	bounds []int64
	mu     sync.RWMutex
	m      map[string]*Histogram
	byIdx  []*Histogram
}

// HistogramVec returns a histogram family keyed by one label.
func (r *Registry) HistogramVec(name, label string, bounds []int64) *HistogramVec {
	return &HistogramVec{r: r, name: name, label: label, bounds: bounds, m: map[string]*Histogram{}}
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.m[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	h = v.r.Histogram(v.name, v.bounds, v.label, value)
	v.mu.Lock()
	v.m[value] = h
	v.mu.Unlock()
	return h
}

// At returns the child histogram for a small non-negative integer label
// value (a multilevel pipeline's level index), via a slice fast path.
func (v *HistogramVec) At(i int) *Histogram {
	if i < 0 {
		i = 0
	}
	v.mu.RLock()
	if i < len(v.byIdx) && v.byIdx[i] != nil {
		h := v.byIdx[i]
		v.mu.RUnlock()
		return h
	}
	v.mu.RUnlock()
	h := v.With(strconv.Itoa(i))
	v.mu.Lock()
	for i >= len(v.byIdx) {
		v.byIdx = append(v.byIdx, nil)
	}
	v.byIdx[i] = h
	v.mu.Unlock()
	return h
}
