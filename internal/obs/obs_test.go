package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("test_ops_total") != c {
		t.Fatal("re-registration returned a different counter handle")
	}

	g := r.Gauge("test_depth")
	g.Set(7)
	g.SetMax(3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge after SetMax(3) = %d, want 7", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("gauge after SetMax(9) = %d, want 9", got)
	}

	h := r.Histogram("test_latency_ns", []int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 5555 {
		t.Fatalf("histogram count=%d sum=%d, want 4/5555", h.Count(), h.Sum())
	}
	for i, want := range []int64{1, 1, 1, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_metric")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("test_metric")
}

func TestLabelsAndVecs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "method", "a")
	c.Add(2)
	snap := r.Snapshot()
	if got := snap.Counters[`test_total{method="a"}`]; got != 2 {
		t.Fatalf("labeled counter = %d, want 2", got)
	}

	cv := r.CounterVec("vec_total", "method")
	cv.With("x").Add(3)
	if cv.With("x") != cv.With("x") {
		t.Fatal("CounterVec.With is not cached")
	}

	hv := r.HistogramVec("vec_ns", "level", []int64{10, 100})
	hv.At(0).Observe(5)
	hv.At(3).Observe(50)
	if hv.At(3) != hv.With("3") {
		t.Fatal("HistogramVec.At and With disagree")
	}
	snap = r.Snapshot()
	if h := snap.Histograms[`vec_ns{level="3"}`]; h.Count != 1 || h.Sum != 50 {
		t.Fatalf("vec_ns{level=3} = %+v, want count 1 sum 50", h)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total")
	hv := r.HistogramVec("conc_ns", "level", []int64{1, 10, 100})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				hv.At(i % 4).Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("concurrent counter = %d, want %d", got, workers*per)
	}
	var total int64
	for i := 0; i < 4; i++ {
		total += hv.At(i).Count()
	}
	if total != workers*per {
		t.Fatalf("concurrent histogram samples = %d, want %d", total, workers*per)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total")
	h := r.Histogram("alloc_ns", DurationBounds)
	hv := r.HistogramVec("alloc_vec_ns", "level", DurationBounds)
	hv.At(2) // warm the index cache
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(12345)
		hv.At(2).Observe(77)
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", n)
	}
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("out_total").Add(3)
	r.Gauge("out_depth").Set(-2)
	h := r.Histogram("out_ns", []int64{10, 100}, "level", "0")
	h.Observe(5)
	h.Observe(500)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE out_total counter",
		"out_total 3",
		"# TYPE out_depth gauge",
		"out_depth -2",
		"# TYPE out_ns histogram",
		`out_ns_bucket{level="0",le="10"} 1`,
		`out_ns_bucket{level="0",le="100"} 1`,
		`out_ns_bucket{level="0",le="+Inf"} 2`,
		`out_ns_sum{level="0"} 505`,
		`out_ns_count{level="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE out_ns histogram") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
}

func TestJSONSnapshotRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("json_total").Add(9)
	r.Histogram("json_ns", []int64{10}).Observe(4)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["json_total"] != 9 {
		t.Fatalf("roundtrip counter = %d, want 9", snap.Counters["json_total"])
	}
	h := snap.Histograms["json_ns"]
	if h.Count != 1 || h.Sum != 4 || len(h.Buckets) != 2 {
		t.Fatalf("roundtrip histogram = %+v", h)
	}
}

func TestSchemaCheck(t *testing.T) {
	r := NewRegistry()
	r.Counter("sch_ops_total").Add(1)
	r.Counter("sch_zero_total")
	r.Histogram("sch_stage_ns", []int64{10}, "level", "0").Observe(25)
	snap := r.Snapshot()

	good := Schema{
		Counters:          []string{"sch_ops_total", "sch_zero_total"},
		NonZeroCounters:   []string{"sch_ops_total"},
		Histograms:        []string{"sch_stage_ns"},
		NonZeroHistograms: []string{"sch_stage_ns"}, // family match against labeled series
	}
	if err := CheckSnapshot(snap, good); err != nil {
		t.Fatalf("good schema rejected: %v", err)
	}

	bad := Schema{
		NonZeroCounters:   []string{"sch_zero_total", "sch_missing_total"},
		NonZeroHistograms: []string{"sch_missing_ns"},
	}
	err := CheckSnapshot(snap, bad)
	if err == nil {
		t.Fatal("bad schema accepted")
	}
	for _, want := range []string{"sch_zero_total", "sch_missing_total", "sch_missing_ns"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("violation report missing %q: %v", want, err)
		}
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reset_total")
	c.Add(5)
	h := r.Histogram("reset_ns", []int64{10})
	h.Observe(3)
	r.Reset()
	if c.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset left values: c=%d count=%d sum=%d", c.Load(), h.Count(), h.Sum())
	}
	c.Inc() // handle still valid
	if r.Snapshot().Counters["reset_total"] != 1 {
		t.Fatal("handle dead after Reset")
	}
}

func TestHandlerAndServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_total").Add(42)
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "http_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"http_total": 42`) {
		t.Fatalf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/metrics?format=json"); !strings.Contains(out, `"http_total": 42`) {
		t.Fatalf("/metrics?format=json missing counter:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("pprof cmdline empty")
	}

	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "http_total 42") {
		t.Fatalf("Serve /metrics missing counter:\n%s", body)
	}
}

func TestObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("since_ns", DurationBounds)
	start := time.Now()
	h.ObserveSince(start)
	if h.Count() != 1 || h.Sum() < 0 {
		t.Fatalf("ObserveSince count=%d sum=%d", h.Count(), h.Sum())
	}
}
