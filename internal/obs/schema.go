package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema is the checked-in contract a -metrics-json dump must satisfy: the
// CI golden check for counter presence and non-zero stage timings. Entries
// name either a full registry key (`hgp_refine_ns{level="0"}`) or a family
// (`hgp_refine_ns`), in which case any series of that family satisfies it.
type Schema struct {
	// Counters must be registered (any value).
	Counters []string `json:"counters"`
	// NonZeroCounters must be registered with a value > 0.
	NonZeroCounters []string `json:"nonzero_counters"`
	// Gauges must be registered (any value).
	Gauges []string `json:"gauges"`
	// Histograms must be registered (any sample count).
	Histograms []string `json:"histograms"`
	// NonZeroHistograms must be registered with at least one sample and a
	// positive sum (a stage that ran and took measurable time).
	NonZeroHistograms []string `json:"nonzero_histograms"`
}

// ReadSchema loads a schema file.
func ReadSchema(path string) (Schema, error) {
	var s Schema
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("obs: schema %s: %w", path, err)
	}
	return s, nil
}

// CheckSnapshot validates a snapshot against the schema, returning an
// error naming every violated entry.
func CheckSnapshot(snap Snapshot, schema Schema) error {
	var violations []string
	note := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	findInt := func(m map[string]int64, entry string) (int64, int, bool) {
		if v, ok := m[entry]; ok {
			return v, 1, true
		}
		var sum int64
		matches := 0
		for key, v := range m {
			if Family(key) == entry {
				sum += v
				matches++
			}
		}
		return sum, matches, matches > 0
	}
	findHist := func(entry string) (count, sum int64, ok bool) {
		if h, present := snap.Histograms[entry]; present {
			return h.Count, h.Sum, true
		}
		matches := 0
		for key, h := range snap.Histograms {
			if Family(key) == entry {
				count += h.Count
				sum += h.Sum
				matches++
			}
		}
		return count, sum, matches > 0
	}

	for _, entry := range schema.Counters {
		if _, _, ok := findInt(snap.Counters, entry); !ok {
			note("counter %q missing", entry)
		}
	}
	for _, entry := range schema.NonZeroCounters {
		v, _, ok := findInt(snap.Counters, entry)
		if !ok {
			note("counter %q missing", entry)
		} else if v <= 0 {
			note("counter %q is zero", entry)
		}
	}
	for _, entry := range schema.Gauges {
		if _, _, ok := findInt(snap.Gauges, entry); !ok {
			note("gauge %q missing", entry)
		}
	}
	for _, entry := range schema.Histograms {
		if _, _, ok := findHist(entry); !ok {
			note("histogram %q missing", entry)
		}
	}
	for _, entry := range schema.NonZeroHistograms {
		count, sum, ok := findHist(entry)
		if !ok {
			note("histogram %q missing", entry)
		} else if count <= 0 || sum <= 0 {
			note("histogram %q has no samples (count=%d sum=%d)", entry, count, sum)
		}
	}
	if len(violations) == 0 {
		return nil
	}
	msg := "obs: metrics dump violates schema:"
	for _, v := range violations {
		msg += "\n  " + v
	}
	return fmt.Errorf("%s", msg)
}

// CheckJSONFile validates a -metrics-json dump file against a schema file.
func CheckJSONFile(dumpPath, schemaPath string) error {
	data, err := os.ReadFile(dumpPath)
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("obs: dump %s: %w", dumpPath, err)
	}
	schema, err := ReadSchema(schemaPath)
	if err != nil {
		return err
	}
	return CheckSnapshot(snap, schema)
}
