package hyperbal

// Regression tests for the client retry backoff. Pre-fix the delay was a
// deterministic doubling: every client rejected by the same 429/503 burst
// retried on the same schedule and re-collided each round. The fix is full
// jitter — uniform in [0, min(base<<attempt, max)) — which keeps the cap
// while decorrelating the herd.

import (
	"testing"
	"time"
)

func TestBackoffDelayFullJitter(t *testing.T) {
	const base, max = 50 * time.Millisecond, 2 * time.Second

	// Different uniform samples must yield different delays at the same
	// attempt: the pre-fix deterministic schedule collapses this spread.
	samples := []float64{0.01, 0.2, 0.4, 0.6, 0.8, 0.99}
	for attempt := 0; attempt < 4; attempt++ {
		seen := map[time.Duration]bool{}
		ceil := base << attempt
		if ceil > max {
			ceil = max
		}
		for _, u := range samples {
			d := backoffDelay(attempt, base, max, u)
			if d >= ceil {
				t.Fatalf("attempt %d u=%.2f: delay %s >= ceiling %s", attempt, u, d, ceil)
			}
			if d < time.Millisecond {
				t.Fatalf("attempt %d u=%.2f: delay %s under the 1ms floor", attempt, u, d)
			}
			seen[d] = true
		}
		if len(seen) < len(samples)-1 {
			t.Fatalf("attempt %d: only %d distinct delays across %d samples — backoff is not jittered", attempt, len(seen), len(samples))
		}
	}
}

func TestBackoffDelayCap(t *testing.T) {
	const base, max = 50 * time.Millisecond, 2 * time.Second
	// Deep attempts: the doubling must saturate at MaxBackoff, not overflow.
	for _, attempt := range []int{6, 10, 30, 63, 100} {
		if d := backoffDelay(attempt, base, max, 0.999); d >= max {
			t.Fatalf("attempt %d: delay %s reached/exceeded cap %s", attempt, d, max)
		}
		// u near 1 must still be able to approach the cap (the jitter range
		// is the full window, not a shrunken one).
		if d := backoffDelay(attempt, base, max, 0.999); d < max/2 {
			t.Fatalf("attempt %d: delay %s for u=0.999 — jitter window collapsed", attempt, d)
		}
	}
}

func TestBackoffDelayFloor(t *testing.T) {
	// A zero sample must never busy-spin the retry loop.
	if d := backoffDelay(0, 50*time.Millisecond, 2*time.Second, 0); d != time.Millisecond {
		t.Fatalf("u=0 delay = %s, want the 1ms floor", d)
	}
}
