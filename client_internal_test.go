package hyperbal

// Regression tests for the client retry backoff. Pre-fix the delay was a
// deterministic doubling: every client rejected by the same 429/503 burst
// retried on the same schedule and re-collided each round. The fix is full
// jitter — uniform in [0, min(base<<attempt, max)) — which keeps the cap
// while decorrelating the herd.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hyperbal/internal/hypergraph"
	"hyperbal/internal/server"
)

func TestBackoffDelayFullJitter(t *testing.T) {
	const base, max = 50 * time.Millisecond, 2 * time.Second

	// Different uniform samples must yield different delays at the same
	// attempt: the pre-fix deterministic schedule collapses this spread.
	samples := []float64{0.01, 0.2, 0.4, 0.6, 0.8, 0.99}
	for attempt := 0; attempt < 4; attempt++ {
		seen := map[time.Duration]bool{}
		ceil := base << attempt
		if ceil > max {
			ceil = max
		}
		for _, u := range samples {
			d := backoffDelay(attempt, base, max, u)
			if d >= ceil {
				t.Fatalf("attempt %d u=%.2f: delay %s >= ceiling %s", attempt, u, d, ceil)
			}
			if d < time.Millisecond {
				t.Fatalf("attempt %d u=%.2f: delay %s under the 1ms floor", attempt, u, d)
			}
			seen[d] = true
		}
		if len(seen) < len(samples)-1 {
			t.Fatalf("attempt %d: only %d distinct delays across %d samples — backoff is not jittered", attempt, len(seen), len(samples))
		}
	}
}

func TestBackoffDelayCap(t *testing.T) {
	const base, max = 50 * time.Millisecond, 2 * time.Second
	// Deep attempts: the doubling must saturate at MaxBackoff, not overflow.
	for _, attempt := range []int{6, 10, 30, 63, 100} {
		if d := backoffDelay(attempt, base, max, 0.999); d >= max {
			t.Fatalf("attempt %d: delay %s reached/exceeded cap %s", attempt, d, max)
		}
		// u near 1 must still be able to approach the cap (the jitter range
		// is the full window, not a shrunken one).
		if d := backoffDelay(attempt, base, max, 0.999); d < max/2 {
			t.Fatalf("attempt %d: delay %s for u=0.999 — jitter window collapsed", attempt, d)
		}
	}
}

// TestOwnerRedirectWithoutSessionErrors: a 307 + X-Hyperbal-Owner answer
// on a call that has no session to chase (CreateSession passes a nil owner
// override) must surface as an error. Pre-fix the moved branch was skipped
// and do() fell through to success with the response never decoded — the
// caller got a zero-valued SessionResponse (empty session id).
func TestOwnerRedirectWithoutSessionErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.OwnerHeader, "http://elsewhere.invalid")
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ClientOptions{MaxRetries: 1, Backoff: time.Millisecond})
	b := hypergraph.NewBuilder(2)
	b.AddNet(1, 0, 1)
	sess, _, err := c.CreateSession(context.Background(), BalancerConfig{K: 2, Alpha: 10}, b.Build())
	if err == nil {
		t.Fatalf("create against a redirecting server reported success (session %+v)", sess)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "moved" {
		t.Fatalf("create error = %v, want a non-retryable APIError with code \"moved\"", err)
	}
}

func TestBackoffDelayFloor(t *testing.T) {
	// A zero sample must never busy-spin the retry loop.
	if d := backoffDelay(0, 50*time.Millisecond, 2*time.Second, 0); d != time.Millisecond {
		t.Fatalf("u=0 delay = %s, want the 1ms floor", d)
	}
}
